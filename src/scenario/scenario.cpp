#include "scenario/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "common/instrument.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/task_context.hpp"
#include "common/trace.hpp"

namespace lcn {

namespace {

int phase_steps(const PowerPhase& phase, double dt) {
  return std::max(1, static_cast<int>(std::ceil(phase.duration / dt)));
}

/// Serial, seeded evaluation of the power trace: per-step scale factors that
/// depend only on the trace configuration (and its rng stream), never on the
/// thread count. advance() must be called once per step, in step order.
class TraceSampler {
 public:
  TraceSampler(const PowerTrace& trace, double dt, std::size_t layers)
      : trace_(trace), dt_(dt), scales_(layers, trace.scale) {
    if (trace.kind == TraceKind::kBursty) {
      rng_ = Rng(trace.seed);
      remaining_ = draw_duration(trace_.mean_idle);
      std::fill(scales_.begin(), scales_.end(), trace_.idle_scale);
    }
    if (trace.kind == TraceKind::kPhases) {
      phase_ = 0;
      steps_left_ = phase_steps(trace.phases.front(), dt);
      apply_phase();
    }
  }

  /// Scales for the step starting at `t0`; `phase` reports the active
  /// kPhases index (-1 otherwise).
  const std::vector<double>& advance(double t0, int& phase) {
    phase = -1;
    switch (trace_.kind) {
      case TraceKind::kConstant:
        break;
      case TraceKind::kPhases:
        if (steps_left_ == 0 &&
            phase_ + 1 < static_cast<int>(trace_.phases.size())) {
          ++phase_;
          steps_left_ =
              phase_steps(trace_.phases[static_cast<std::size_t>(phase_)],
                          dt_);
          apply_phase();
        }
        --steps_left_;
        phase = phase_;
        break;
      case TraceKind::kPeriodic: {
        const double in_period = std::fmod(t0, trace_.period);
        const double s = in_period < trace_.duty * trace_.period
                             ? trace_.high
                             : trace_.low;
        std::fill(scales_.begin(), scales_.end(), s);
        break;
      }
      case TraceKind::kBursty: {
        while (remaining_ <= 0.0) {
          in_burst_ = !in_burst_;
          remaining_ += draw_duration(in_burst_ ? trace_.mean_burst
                                                : trace_.mean_idle);
        }
        remaining_ -= dt_;
        const double s = in_burst_ ? trace_.burst_scale : trace_.idle_scale;
        std::fill(scales_.begin(), scales_.end(), s);
        break;
      }
    }
    return scales_;
  }

 private:
  double draw_duration(double mean) {
    // Exponential renewal times; floored at one step so state flips are
    // visible at any dt.
    const double u = rng_.next_double();
    return std::max(dt_, -mean * std::log1p(-u));
  }

  void apply_phase() {
    const PowerPhase& p = trace_.phases[static_cast<std::size_t>(phase_)];
    std::copy(p.layer_scale.begin(), p.layer_scale.end(), scales_.begin());
  }

  const PowerTrace& trace_;
  double dt_;
  std::vector<double> scales_;
  Rng rng_{1};
  bool in_burst_ = false;
  double remaining_ = 0.0;
  int phase_ = -1;
  int steps_left_ = 0;
};

double throttle_scale_for(const ThrottlePolicy& policy, double t_max_prev) {
  if (policy.t_throttle <= 0.0) return 1.0;
  const double t_hi = policy.t_critical > policy.t_throttle
                          ? policy.t_critical
                          : policy.t_throttle + 5.0;
  if (t_max_prev <= policy.t_throttle) return 1.0;
  if (t_max_prev >= t_hi) return policy.min_scale;
  const double f = (t_max_prev - policy.t_throttle) / (t_hi - policy.t_throttle);
  return 1.0 + f * (policy.min_scale - 1.0);
}

double desired_pressure(const PumpPolicy& pump, int phase,
                        double t_max_prev) {
  switch (pump.kind) {
    case PumpPolicyKind::kFixed:
      return pump.p_fixed;
    case PumpPolicyKind::kSchedule:
      return pump.schedule[static_cast<std::size_t>(std::max(0, phase))];
    case PumpPolicyKind::kThermostat: {
      const double p = pump.p_fixed + pump.gain * (t_max_prev - pump.t_target);
      return std::clamp(p, pump.p_min, pump.p_max);
    }
  }
  return pump.p_fixed;  // unreachable
}

/// T_max/ΔT over the source layers without copying the temperature vector
/// (make_field's metric loop, minus the map extraction).
void source_metrics(const AssembledThermal& system,
                    const std::vector<double>& temps, double& t_max,
                    double& delta_t) {
  t_max = 0.0;
  delta_t = 0.0;
  for (const auto& nodes : system.source_nodes) {
    double lo = 1e300;
    double hi = -1e300;
    for (std::size_t node : nodes) {
      const double t = temps[node];
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
    delta_t = std::max(delta_t, hi - lo);
    t_max = std::max(t_max, hi);
  }
}

std::variant<Thermal2RM, Thermal4RM> make_sim(const CoolingProblem& problem,
                                              const CoolingNetwork& network,
                                              const SimConfig& config) {
  std::vector<CoolingNetwork> nets(
      static_cast<std::size_t>(problem.stack.channel_count()), network);
  if (config.model == ThermalModelKind::k4RM) {
    return std::variant<Thermal2RM, Thermal4RM>(
        std::in_place_type<Thermal4RM>, problem, std::move(nets));
  }
  return std::variant<Thermal2RM, Thermal4RM>(
      std::in_place_type<Thermal2RM>, problem, std::move(nets),
      config.thermal_cell);
}

void validate_config(const CoolingProblem& problem,
                     const ScenarioConfig& config) {
  LCN_REQUIRE(config.dt > 0.0, "scenario dt must be positive");
  const std::size_t layers = problem.source_power.size();
  const PowerTrace& trace = config.trace;
  if (trace.kind == TraceKind::kPhases) {
    LCN_REQUIRE(!trace.phases.empty(), "phase trace needs at least one phase");
    for (const PowerPhase& p : trace.phases) {
      LCN_REQUIRE(p.layer_scale.size() == layers,
                  "one scale factor per source layer required");
      LCN_REQUIRE(p.duration > 0.0, "phase duration must be positive");
      for (double s : p.layer_scale) {
        LCN_REQUIRE(s >= 0.0, "power scale must be non-negative");
      }
    }
  } else {
    LCN_REQUIRE(config.steps >= 1, "need at least one step");
  }
  if (trace.kind == TraceKind::kPeriodic) {
    LCN_REQUIRE(trace.period > 0.0 && trace.duty >= 0.0 && trace.duty <= 1.0,
                "periodic trace needs period > 0 and duty in [0, 1]");
  }
  if (trace.kind == TraceKind::kBursty) {
    LCN_REQUIRE(trace.mean_idle > 0.0 && trace.mean_burst > 0.0,
                "bursty trace needs positive mean durations");
  }
  const PumpPolicy& pump = config.pump;
  LCN_REQUIRE(pump.p_min > 0.0 && pump.p_max >= pump.p_min,
              "pump policy needs 0 < p_min <= p_max");
  LCN_REQUIRE(pump.slew_rate >= 0.0, "slew rate must be non-negative");
  if (pump.kind == PumpPolicyKind::kSchedule) {
    LCN_REQUIRE(trace.kind == TraceKind::kPhases &&
                    pump.schedule.size() == trace.phases.size(),
                "pump schedule must align with a phase trace");
    for (double p : pump.schedule) {
      LCN_REQUIRE(p > 0.0, "scheduled pressures must be positive");
    }
  } else {
    LCN_REQUIRE(pump.p_fixed > 0.0, "pump pressure must be positive");
  }
  for (const TimedFault& timed : config.faults) {
    LCN_REQUIRE(timed.onset >= 0.0 && timed.ramp >= 0.0,
                "fault onset and ramp must be non-negative");
    if (timed.fault.kind == FaultKind::kChannelBlockage) {
      // State carries across the structural rebuild, which requires the
      // node set to survive: partial blockages only.
      LCN_REQUIRE(timed.fault.severity < 1.0,
                  "scenario blockages must be partial (severity < 1)");
    }
    if (timed.fault.kind == FaultKind::kPumpDroop) {
      LCN_REQUIRE(timed.fault.severity < 1.0,
                  "pump droop must leave positive pressure (severity < 1)");
    }
  }
}

}  // namespace

int scenario_step_count(const ScenarioConfig& config) {
  if (config.trace.kind != TraceKind::kPhases) return config.steps;
  int total = 0;
  for (const PowerPhase& p : config.trace.phases) {
    total += phase_steps(p, config.dt);
  }
  return total;
}

ScenarioResult run_scenario(const CoolingProblem& problem,
                            const CoolingNetwork& network,
                            const ScenarioConfig& config,
                            const ScenarioCallback& on_sample) {
  LCN_TRACE_SPAN("run_scenario");
  problem.validate();
  validate_config(problem, config);
  const double dt = config.dt;
  const int total_steps = scenario_step_count(config);
  const SteadySolverConfig solver =
      config.solver ? *config.solver : SteadySolverConfig::from_env();
  ProgressSink* const progress = task_progress_sink();

  // Nominal model; rebuilt when the active structural-fault set changes.
  std::variant<Thermal2RM, Thermal4RM> sim =
      make_sim(problem, network, config.sim);
  auto plan_of = [](const std::variant<Thermal2RM, Thermal4RM>& s)
      -> const ThermalAssemblyPlan& {
    return std::visit([](const auto& m) -> const ThermalAssemblyPlan& {
      return m.plan();
    }, s);
  };
  auto unit_flow_of = [](const std::variant<Thermal2RM, Thermal4RM>& s) {
    return std::visit([](const auto& m) { return m.system_flow(1.0); }, s);
  };
  auto pump_power_of = [](const std::variant<Thermal2RM, Thermal4RM>& s,
                          double p) {
    return std::visit([p](const auto& m) { return m.pumping_power(p); }, s);
  };

  std::optional<CduLoop> loop;
  if (config.cdu_enabled) {
    loop.emplace(config.cdu, unit_flow_of(sim), problem.coolant.volumetric_heat,
                 problem.inlet_temperature);
  }

  TraceSampler sampler(config.trace, dt, problem.source_power.size());
  FaultScenario active_structural;  // empty = pristine hydraulics

  ScenarioResult result;
  result.samples.reserve(static_cast<std::size_t>(total_steps));

  BoundaryState boundary{problem.inlet_temperature, {}};
  boundary.power_scale.assign(problem.source_power.size(), 1.0);

  AssembledThermal system;
  std::optional<TransientStepper> stepper;
  std::vector<double> temps;
  double p_bound = 0.0;    ///< delivered pressure the system was assembled at
  double p_command = 0.0;  ///< previous actuator command (slew reference)
  double t_max_prev = 0.0;
  bool have_prev_t = false;

  for (int step = 1; step <= total_steps; ++step) {
    throw_if_cancelled();
    const metrics::ScopedLatency step_latency(
        metrics::Hist::scenario_step_seconds);
    const double t0 = (step - 1) * dt;

    // --- Structural faults: rebuild the degraded model when the active
    // blockage set changes (symbolic rebuild; node set is preserved because
    // scenario blockages are partial).
    bool model_changed = false;
    FaultScenario structural = active_structural_faults(config.faults, t0);
    if (structural.faults != active_structural.faults) {
      const DegradedSystem degraded =
          apply_scenario(problem, network, structural);
      const std::size_t old_nodes =
          std::visit([](const auto& m) { return m.node_count(); }, sim);
      sim = make_sim(degraded.problem, degraded.network, config.sim);
      const std::size_t new_nodes =
          std::visit([](const auto& m) { return m.node_count(); }, sim);
      LCN_CHECK(new_nodes == old_nodes,
                "partial blockage must preserve the node set");
      if (loop) loop->set_chip_unit_flow(unit_flow_of(sim));
      active_structural = std::move(structural);
      model_changed = true;
    }

    // --- Power scales: trace × timed excursions × throttle (previous-step
    // T_max; the first step runs unthrottled — nothing measured yet).
    int phase = -1;
    const std::vector<double>& trace_scales = sampler.advance(t0, phase);
    const double throttle =
        have_prev_t ? throttle_scale_for(config.throttle, t_max_prev) : 1.0;
    for (std::size_t l = 0; l < boundary.power_scale.size(); ++l) {
      boundary.power_scale[l] =
          trace_scales[l] *
          timed_power_factor(config.faults, t0, static_cast<int>(l)) *
          throttle;
    }

    // --- Pump command under the actuator's slew limit, then the delivered
    // pressure after droop faults and (with a CDU) the pump curve.
    double desired = desired_pressure(
        config.pump, phase, have_prev_t ? t_max_prev : config.pump.t_target);
    if (step > 1 && config.pump.slew_rate > 0.0) {
      const double max_delta = config.pump.slew_rate * dt;
      desired = std::clamp(desired, p_command - max_delta,
                           p_command + max_delta);
    }
    p_command = desired;
    double delivered = p_command * timed_pressure_derate(config.faults, t0);
    if (loop) delivered = std::min(delivered, loop->max_chip_pressure());
    LCN_CHECK(delivered > 0.0, "delivered pump pressure must stay positive");

    // --- Chip inlet temperature: CDU supply (or the nominal inlet) plus
    // any timed inlet drift.
    const double base_inlet =
        loop ? loop->supply_temperature() : problem.inlet_temperature;
    boundary.inlet_temperature =
        base_inlet + timed_inlet_drift(config.faults, t0);

    // --- Assemble / refill. A pressure or model change refills the matrix
    // on the assembly plan; otherwise only the RHS is rewritten in place.
    if (model_changed || stepper == std::nullopt || delivered != p_bound) {
      system = plan_of(sim).assemble(delivered, boundary);
      p_bound = delivered;
      if (stepper) {
        stepper->rebind(system, dt);
      } else {
        stepper.emplace(system, dt, solver);
      }
    } else {
      plan_of(sim).refill_rhs(delivered, boundary, system);
    }

    if (temps.empty()) {
      temps.assign(system.matrix.rows(), boundary.inlet_temperature);
    }
    stepper->step(temps, config.rel_tolerance);
    instrument::add_scenario_step();

    ScenarioSample sample;
    sample.step = step;
    sample.time = step * dt;
    sample.phase = phase;
    source_metrics(system, temps, sample.t_max, sample.delta_t);
    sample.power_scale = trace_scales.empty() ? 1.0 : trace_scales.front();
    sample.throttle_scale = throttle;
    sample.p_command = p_command;
    sample.p_delivered = delivered;
    sample.inlet_temperature = boundary.inlet_temperature;
    sample.w_pump = pump_power_of(sim, delivered);
    sample.heat_to_coolant = advected_heat(system, temps);

    // --- Close the loop: the advected heat loads the CDU; its new supply
    // temperature is the next step's inlet.
    if (loop) {
      const double flow = system.inlet_flow_total;
      if (flow > 0.0) loop->advance(dt, flow, sample.heat_to_coolant);
      sample.cdu_supply = loop->supply_temperature();
      sample.cdu_return = loop->return_temperature();
    }

    t_max_prev = sample.t_max;
    have_prev_t = true;
    result.peak_t_max = std::max(result.peak_t_max, sample.t_max);
    result.peak_delta_t = std::max(result.peak_delta_t, sample.delta_t);
    result.final_inlet = sample.inlet_temperature;

    if (trace::enabled(trace::kFine) || progress != nullptr) {
      const std::string args = strfmt(
          "\"step\":%d,\"t\":%.6g,\"t_max\":%.6f,\"delta_t\":%.6f,"
          "\"p\":%.6g,\"inlet\":%.4f,\"scale\":%.4g,\"throttle\":%.4g",
          sample.step, sample.time, sample.t_max, sample.delta_t,
          sample.p_delivered, sample.inlet_temperature, sample.power_scale,
          sample.throttle_scale);
      trace::emit_instant("scenario_step", trace::kFine, args.c_str());
      if (progress != nullptr) progress->emit("scenario_step", args.c_str());
    }
    if (on_sample) on_sample(sample);
    result.samples.push_back(sample);
  }

  result.steps = total_steps;
  result.final_temps = std::move(temps);
  return result;
}

double scenario_peak_t_max(const CoolingProblem& problem,
                           const CoolingNetwork& network,
                           const ScenarioConfig& config) {
  return run_scenario(problem, network, config).peak_t_max;
}

}  // namespace lcn
