// Dynamic-scenario engine (DESIGN.md §S23): time-stepped co-simulation of
// the chip thermal model under a pluggable power trace, a pump control
// policy with actuator limits, thermal-throttling feedback, time-triggered
// faults, and an optional rack/CDU coolant loop feeding back into the chip
// inlet temperature each step.
//
// Per step the engine
//   1. evaluates the power trace and the timed power-excursion faults into
//      per-source-layer scales, multiplied by the throttle governor's scale
//      (computed from the previous step's T_max — one-step-delayed feedback,
//      like a real DVFS loop);
//   2. applies the pump policy (fixed / per-phase schedule / thermostat)
//      under its slew-rate limit, then derates the command by the active
//      pump-droop faults and, with a CDU, by the pump curve's deliverable
//      head;
//   3. rebuilds the degraded model when the set of active channel blockages
//      changed (a full symbolic rebuild — rare), refills the assembly plan
//      when the delivered pressure changed (numeric refill), or refills only
//      the RHS when just power/boundary moved (the cheap common case);
//   4. advances one backward-Euler step, extracts T_max/ΔT, and advances the
//      CDU loop with the advected heat — its new supply temperature becomes
//      the next step's inlet temperature.
//
// Determinism: all control-path arithmetic is serial scalar math and the
// stepper's kernels follow the parallel-equivalence idiom, so trajectories
// are bit-identical for any LCN_THREADS. Cancellation: the step loop calls
// throw_if_cancelled(), so a served scenario job or a Ctrl-C'd CLI run
// unwinds promptly with lcn::Cancelled.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "flow/loop.hpp"
#include "opt/evaluator.hpp"
#include "reliability/fault_model.hpp"
#include "thermal/boundary.hpp"
#include "thermal/transient.hpp"

namespace lcn {

/// One workload interval: per-source-layer scale factors on the nominal
/// power maps for `duration` seconds. (Shared with the run-time flow
/// planner in src/opt/runtime_flow.*, which generalized into this engine.)
struct PowerPhase {
  /// Scale factors applied to each source layer's nominal power map.
  std::vector<double> layer_scale;
  double duration = 1.0;  ///< s
};

enum class TraceKind : std::uint8_t {
  kConstant = 0,  ///< fixed scale on every layer
  kPhases = 1,    ///< explicit PowerPhase schedule (per-layer scales)
  kPeriodic = 2,  ///< square wave between `low` and `high`
  kBursty = 3,    ///< seeded two-state (idle/burst) renewal process
};

struct PowerTrace {
  TraceKind kind = TraceKind::kConstant;
  double scale = 1.0;  ///< kConstant scale
  /// kPhases: the schedule. Step counts per phase are ceil(duration/dt)
  /// (min 1), overriding ScenarioConfig::steps.
  std::vector<PowerPhase> phases;
  // kPeriodic: square wave, `high` for the first `duty` fraction of each
  // period, `low` for the rest.
  double period = 0.1;  ///< s
  double duty = 0.5;
  double low = 0.5;
  double high = 1.0;
  // kBursty: alternates idle_scale/burst_scale; state durations are drawn
  // exponentially with the given means from a deterministic per-trace rng
  // stream, so the trace depends only on `seed`.
  double idle_scale = 0.5;
  double burst_scale = 1.5;
  double mean_idle = 0.05;   ///< s
  double mean_burst = 0.02;  ///< s
  std::uint64_t seed = 1;
};

enum class PumpPolicyKind : std::uint8_t {
  kFixed = 0,       ///< constant commanded pressure
  kSchedule = 1,    ///< one commanded pressure per trace phase
  kThermostat = 2,  ///< proportional on (T_max − t_target)
};

/// Pump controller. Commands are chip pressure drops in Pa; the actuator
/// limit caps the command's rate of change at `slew_rate` Pa/s.
struct PumpPolicy {
  PumpPolicyKind kind = PumpPolicyKind::kFixed;
  double p_fixed = 5.0e3;  ///< kFixed command / kThermostat base, Pa
  /// kSchedule: commanded pressure per phase (aligned with trace.phases).
  std::vector<double> schedule;
  // kThermostat: p = clamp(p_fixed + gain·(T_prev_max − t_target)).
  double t_target = 345.0;  ///< K
  double gain = 500.0;      ///< Pa/K
  double p_min = 1.0e3;     ///< Pa (must stay positive: P_sys > 0)
  double p_max = 2.0e4;     ///< Pa
  /// Max |dP/dt| of the command, Pa/s; 0 = unlimited.
  double slew_rate = 0.0;
};

/// Thermal throttling: power scale as a function of the previous step's
/// T_max — 1 below `t_throttle`, linear down to `min_scale` at `t_critical`.
struct ThrottlePolicy {
  double t_throttle = 0.0;  ///< K; <= 0 disables throttling
  double t_critical = 0.0;  ///< K; <= t_throttle resolves to t_throttle + 5
  double min_scale = 0.2;
};

struct ScenarioConfig {
  SimConfig sim{ThermalModelKind::k2RM, 4};
  double dt = 1e-3;  ///< s
  /// Step count (kPhases traces derive it from the phase durations).
  int steps = 100;
  double rel_tolerance = 1e-9;
  PowerTrace trace;
  PumpPolicy pump;
  ThrottlePolicy throttle;
  /// Timed faults on the scenario clock. Channel blockages must have
  /// severity < 1 (partial): the engine carries the temperature state across
  /// the rebuild, which requires a structure-preserving degradation.
  std::vector<TimedFault> faults;
  bool cdu_enabled = false;
  CduConfig cdu;
  /// Solver selection; unset reads SteadySolverConfig::from_env().
  std::optional<SteadySolverConfig> solver;
};

struct ScenarioSample {
  int step = 0;        ///< 1-based
  double time = 0.0;   ///< s, end of step
  int phase = -1;      ///< kPhases index, -1 otherwise
  double t_max = 0.0;  ///< K
  double delta_t = 0.0;
  double power_scale = 1.0;     ///< trace scale (layer 0, before throttle)
  double throttle_scale = 1.0;  ///< governor scale applied this step
  double p_command = 0.0;       ///< Pa after the slew limit
  double p_delivered = 0.0;     ///< Pa after droop derate / pump curve
  double inlet_temperature = 0.0;  ///< K, chip inlet this step
  double w_pump = 0.0;             ///< W at the delivered pressure
  double heat_to_coolant = 0.0;    ///< W advected out by the coolant
  double cdu_supply = 0.0;  ///< K loop supply (0 when no CDU)
  double cdu_return = 0.0;  ///< K loop return (0 when no CDU)
};

struct ScenarioResult {
  std::vector<ScenarioSample> samples;
  double peak_t_max = 0.0;
  double peak_delta_t = 0.0;
  double final_inlet = 0.0;  ///< K, last step's chip inlet
  std::vector<double> final_temps;
  int steps = 0;
};

using ScenarioCallback = std::function<void(const ScenarioSample&)>;

/// Total step count a config will run (phase traces override `steps`).
int scenario_step_count(const ScenarioConfig& config);

/// Run a scenario on one (problem, network) pair. `on_sample` (optional) is
/// invoked after every step, before the sample lands in the result — the
/// CLI streams rows from it. Each sample is also mirrored to the session's
/// ProgressSink and the trace ring as a `scenario_step` instant (§S19/§S22).
ScenarioResult run_scenario(const CoolingProblem& problem,
                            const CoolingNetwork& network,
                            const ScenarioConfig& config,
                            const ScenarioCallback& on_sample = {});

/// Peak T_max over a reference trace — the transient-aware objective the
/// Pareto archive can carry next to the steady metrics (§S21).
double scenario_peak_t_max(const CoolingProblem& problem,
                           const CoolingNetwork& network,
                           const ScenarioConfig& config);

}  // namespace lcn
