#include "scenario/scenario_io.hpp"

#include <fstream>
#include <sstream>

#include "common/assert.hpp"
#include "common/strings.hpp"
#include "service/json.hpp"

namespace lcn {

namespace {

using service::JsonObject;

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw RuntimeError(strfmt("scenario line %d: %s", line_no, what.c_str()));
}

std::vector<double> parse_scales(const std::string& text, int line_no) {
  std::vector<double> scales;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    try {
      std::size_t used = 0;
      const double v = std::stod(item, &used);
      while (used < item.size() && std::isspace((unsigned char)item[used])) {
        ++used;
      }
      if (used != item.size()) throw std::invalid_argument(item);
      scales.push_back(v);
    } catch (const std::exception&) {
      fail(line_no, "bad scale list \"" + text + "\"");
    }
  }
  if (scales.empty()) fail(line_no, "empty scale list");
  return scales;
}

void apply_header(const JsonObject& obj, ScenarioConfig& config,
                  int line_no) {
  const std::string model = obj.get_string("model", "2rm");
  if (model == "2rm") {
    config.sim.model = ThermalModelKind::k2RM;
  } else if (model == "4rm") {
    config.sim.model = ThermalModelKind::k4RM;
  } else {
    fail(line_no, "unknown model \"" + model + "\" (want 2rm or 4rm)");
  }
  config.sim.thermal_cell =
      static_cast<int>(obj.get_number("cell", config.sim.thermal_cell));
  config.dt = obj.get_number("dt", config.dt);
  config.steps = static_cast<int>(obj.get_number("steps", config.steps));
  config.rel_tolerance =
      obj.get_number("rel_tolerance", config.rel_tolerance);
  config.trace.scale = obj.get_number("scale", config.trace.scale);
  config.throttle.t_throttle =
      obj.get_number("t_throttle", config.throttle.t_throttle);
  config.throttle.t_critical =
      obj.get_number("t_critical", config.throttle.t_critical);
  config.throttle.min_scale =
      obj.get_number("min_scale", config.throttle.min_scale);
  config.cdu_enabled = obj.get_bool("cdu", false);
  CduConfig& cdu = config.cdu;
  cdu.pump.p_max = obj.get_number("pump_p_max", cdu.pump.p_max);
  cdu.pump.q_max = obj.get_number("pump_q_max", cdu.pump.q_max);
  cdu.header_loss = obj.get_number("header_loss", cdu.header_loss);
  cdu.hx_ua = obj.get_number("hx_ua", cdu.hx_ua);
  cdu.facility_flow = obj.get_number("facility_flow", cdu.facility_flow);
  cdu.facility_temperature =
      obj.get_number("facility_temperature", cdu.facility_temperature);
  cdu.facility_volumetric_heat = obj.get_number(
      "facility_volumetric_heat", cdu.facility_volumetric_heat);
  cdu.loop_volume = obj.get_number("loop_volume", cdu.loop_volume);
}

void apply_phase(const JsonObject& obj, ScenarioConfig& config, int line_no,
                 bool& schedule_seen, bool& schedule_missing) {
  config.trace.kind = TraceKind::kPhases;
  if (!obj.has("scales")) fail(line_no, "phase needs a \"scales\" list");
  PowerPhase phase;
  phase.layer_scale = parse_scales(obj.get_string("scales"), line_no);
  phase.duration = obj.get_number("duration", phase.duration);
  config.trace.phases.push_back(std::move(phase));
  if (obj.has("pressure")) {
    schedule_seen = true;
    config.pump.schedule.push_back(obj.get_number("pressure"));
  } else {
    schedule_missing = true;
  }
}

void apply_pump(const JsonObject& obj, ScenarioConfig& config, int line_no) {
  const std::string kind = obj.get_string("kind", "fixed");
  if (kind == "fixed") {
    config.pump.kind = PumpPolicyKind::kFixed;
  } else if (kind == "thermostat") {
    config.pump.kind = PumpPolicyKind::kThermostat;
  } else {
    // kSchedule is selected implicitly by "pressure" fields on phase lines.
    fail(line_no, "unknown pump kind \"" + kind +
                      "\" (want fixed or thermostat)");
  }
  PumpPolicy& pump = config.pump;
  pump.p_fixed = obj.get_number("p", pump.p_fixed);
  pump.t_target = obj.get_number("t_target", pump.t_target);
  pump.gain = obj.get_number("gain", pump.gain);
  pump.p_min = obj.get_number("p_min", pump.p_min);
  pump.p_max = obj.get_number("p_max", pump.p_max);
  pump.slew_rate = obj.get_number("slew_rate", pump.slew_rate);
}

void apply_fault(const JsonObject& obj, ScenarioConfig& config, int line_no) {
  TimedFault timed;
  timed.onset = obj.get_number("onset", 0.0);
  timed.ramp = obj.get_number("ramp", 0.0);
  Fault& fault = timed.fault;
  const std::string kind = obj.get_string("kind");
  if (kind == "blockage") {
    fault.kind = FaultKind::kChannelBlockage;
    fault.row = static_cast<int>(obj.get_number("row"));
    fault.col = static_cast<int>(obj.get_number("col"));
    fault.radius = static_cast<int>(obj.get_number("radius", 1.0));
    fault.severity = obj.get_number("severity", 0.5);
  } else if (kind == "droop") {
    fault.kind = FaultKind::kPumpDroop;
    fault.severity = obj.get_number("severity", 0.2);
  } else if (kind == "drift") {
    fault.kind = FaultKind::kInletDrift;
    fault.magnitude = obj.get_number("magnitude", 5.0);
  } else if (kind == "excursion") {
    fault.kind = FaultKind::kPowerExcursion;
    fault.magnitude = obj.get_number("magnitude", 0.2);
    fault.layer = static_cast<int>(obj.get_number("layer", -1.0));
  } else {
    fail(line_no, "unknown fault kind \"" + kind +
                      "\" (want blockage, droop, drift, or excursion)");
  }
  config.faults.push_back(std::move(timed));
}

void apply_periodic(const JsonObject& obj, ScenarioConfig& config) {
  config.trace.kind = TraceKind::kPeriodic;
  config.trace.period = obj.get_number("period", config.trace.period);
  config.trace.duty = obj.get_number("duty", config.trace.duty);
  config.trace.low = obj.get_number("low", config.trace.low);
  config.trace.high = obj.get_number("high", config.trace.high);
}

void apply_bursty(const JsonObject& obj, ScenarioConfig& config,
                  int line_no) {
  config.trace.kind = TraceKind::kBursty;
  PowerTrace& trace = config.trace;
  trace.idle_scale = obj.get_number("idle_scale", trace.idle_scale);
  trace.burst_scale = obj.get_number("burst_scale", trace.burst_scale);
  trace.mean_idle = obj.get_number("mean_idle", trace.mean_idle);
  trace.mean_burst = obj.get_number("mean_burst", trace.mean_burst);
  std::uint64_t seed = 0;
  switch (obj.get_uint64("seed", seed)) {
    case JsonObject::IntStatus::kOk:
      trace.seed = seed;
      break;
    case JsonObject::IntStatus::kMissing:
      break;
    case JsonObject::IntStatus::kBad:
      fail(line_no, "seed must be an unsigned integer");
  }
}

}  // namespace

ScenarioConfig parse_scenario_text(const std::string& text) {
  ScenarioConfig config;
  bool header_seen = false;
  bool schedule_seen = false;
  bool schedule_missing = false;
  std::stringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    JsonObject obj;
    std::string error;
    if (!service::parse_json_object(line, obj, error)) fail(line_no, error);
    const std::string type = obj.get_string("type");
    if (type == "scenario") {
      if (header_seen) fail(line_no, "duplicate scenario header");
      header_seen = true;
      apply_header(obj, config, line_no);
    } else if (!header_seen) {
      fail(line_no, "the first line must be the scenario header");
    } else if (type == "phase") {
      apply_phase(obj, config, line_no, schedule_seen, schedule_missing);
    } else if (type == "periodic") {
      apply_periodic(obj, config);
    } else if (type == "bursty") {
      apply_bursty(obj, config, line_no);
    } else if (type == "pump") {
      apply_pump(obj, config, line_no);
    } else if (type == "fault") {
      apply_fault(obj, config, line_no);
    } else {
      fail(line_no, "unknown line type \"" + type + "\"");
    }
  }
  if (!header_seen) {
    throw RuntimeError("scenario file has no scenario header line");
  }
  if (schedule_seen) {
    if (schedule_missing) {
      throw RuntimeError(
          "either every phase line carries \"pressure\" or none does");
    }
    config.pump.kind = PumpPolicyKind::kSchedule;
  }
  return config;
}

ScenarioConfig load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw RuntimeError("cannot open scenario file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_scenario_text(buffer.str());
}

std::string scenario_csv_header() {
  return "step,time,phase,t_max,delta_t,power_scale,throttle_scale,"
         "p_command,p_delivered,inlet_temperature,w_pump,heat_to_coolant,"
         "cdu_supply,cdu_return";
}

std::string scenario_sample_csv(const ScenarioSample& s) {
  return strfmt("%d,%.9g,%d,%.6f,%.6f,%.6g,%.6g,%.6g,%.6g,%.4f,%.6g,%.6g,"
                "%.4f,%.4f",
                s.step, s.time, s.phase, s.t_max, s.delta_t, s.power_scale,
                s.throttle_scale, s.p_command, s.p_delivered,
                s.inlet_temperature, s.w_pump, s.heat_to_coolant,
                s.cdu_supply, s.cdu_return);
}

std::string scenario_sample_json(const ScenarioSample& s) {
  return strfmt(
      "{\"step\":%d,\"time\":%.9g,\"phase\":%d,\"t_max\":%.6f,"
      "\"delta_t\":%.6f,\"power_scale\":%.6g,\"throttle_scale\":%.6g,"
      "\"p_command\":%.6g,\"p_delivered\":%.6g,\"inlet_temperature\":%.4f,"
      "\"w_pump\":%.6g,\"heat_to_coolant\":%.6g,\"cdu_supply\":%.4f,"
      "\"cdu_return\":%.4f}",
      s.step, s.time, s.phase, s.t_max, s.delta_t, s.power_scale,
      s.throttle_scale, s.p_command, s.p_delivered, s.inlet_temperature,
      s.w_pump, s.heat_to_coolant, s.cdu_supply, s.cdu_return);
}

}  // namespace lcn
