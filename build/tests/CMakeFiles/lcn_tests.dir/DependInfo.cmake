
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/benchmarks_test.cpp" "tests/CMakeFiles/lcn_tests.dir/benchmarks_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/benchmarks_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/lcn_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/crosscheck_test.cpp" "tests/CMakeFiles/lcn_tests.dir/crosscheck_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/crosscheck_test.cpp.o.d"
  "/root/repo/tests/exhaustive_test.cpp" "tests/CMakeFiles/lcn_tests.dir/exhaustive_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/exhaustive_test.cpp.o.d"
  "/root/repo/tests/field_test.cpp" "tests/CMakeFiles/lcn_tests.dir/field_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/field_test.cpp.o.d"
  "/root/repo/tests/flow_test.cpp" "tests/CMakeFiles/lcn_tests.dir/flow_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/flow_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/lcn_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/geom_test.cpp" "tests/CMakeFiles/lcn_tests.dir/geom_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/geom_test.cpp.o.d"
  "/root/repo/tests/gmres_test.cpp" "tests/CMakeFiles/lcn_tests.dir/gmres_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/gmres_test.cpp.o.d"
  "/root/repo/tests/ic0_test.cpp" "tests/CMakeFiles/lcn_tests.dir/ic0_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/ic0_test.cpp.o.d"
  "/root/repo/tests/image_test.cpp" "tests/CMakeFiles/lcn_tests.dir/image_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/image_test.cpp.o.d"
  "/root/repo/tests/misc_api_test.cpp" "tests/CMakeFiles/lcn_tests.dir/misc_api_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/misc_api_test.cpp.o.d"
  "/root/repo/tests/network_test.cpp" "tests/CMakeFiles/lcn_tests.dir/network_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/network_test.cpp.o.d"
  "/root/repo/tests/opt_test.cpp" "tests/CMakeFiles/lcn_tests.dir/opt_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/opt_test.cpp.o.d"
  "/root/repo/tests/physics_property_test.cpp" "tests/CMakeFiles/lcn_tests.dir/physics_property_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/physics_property_test.cpp.o.d"
  "/root/repo/tests/pressure_search_test.cpp" "tests/CMakeFiles/lcn_tests.dir/pressure_search_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/pressure_search_test.cpp.o.d"
  "/root/repo/tests/problem_io_test.cpp" "tests/CMakeFiles/lcn_tests.dir/problem_io_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/problem_io_test.cpp.o.d"
  "/root/repo/tests/report_test.cpp" "tests/CMakeFiles/lcn_tests.dir/report_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/runtime_flow_test.cpp" "tests/CMakeFiles/lcn_tests.dir/runtime_flow_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/runtime_flow_test.cpp.o.d"
  "/root/repo/tests/sparse_test.cpp" "tests/CMakeFiles/lcn_tests.dir/sparse_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/sparse_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/lcn_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/thermal_test.cpp" "tests/CMakeFiles/lcn_tests.dir/thermal_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/thermal_test.cpp.o.d"
  "/root/repo/tests/validation_test.cpp" "tests/CMakeFiles/lcn_tests.dir/validation_test.cpp.o" "gcc" "tests/CMakeFiles/lcn_tests.dir/validation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
