# Empty dependencies file for lcn_tests.
# This may be replaced when dependencies are built.
