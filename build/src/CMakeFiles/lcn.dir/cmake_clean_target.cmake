file(REMOVE_RECURSE
  "liblcn.a"
)
