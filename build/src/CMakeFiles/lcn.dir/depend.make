# Empty dependencies file for lcn.
# This may be replaced when dependencies are built.
