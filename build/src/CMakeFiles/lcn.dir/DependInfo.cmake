
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/assert.cpp" "src/CMakeFiles/lcn.dir/common/assert.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/common/assert.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/CMakeFiles/lcn.dir/common/csv.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/common/csv.cpp.o.d"
  "/root/repo/src/common/env.cpp" "src/CMakeFiles/lcn.dir/common/env.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/common/env.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/lcn.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/common/log.cpp.o.d"
  "/root/repo/src/common/strings.cpp" "src/CMakeFiles/lcn.dir/common/strings.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/common/strings.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/lcn.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/lcn.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/flow/flow_solver.cpp" "src/CMakeFiles/lcn.dir/flow/flow_solver.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/flow/flow_solver.cpp.o.d"
  "/root/repo/src/flow/flow_stats.cpp" "src/CMakeFiles/lcn.dir/flow/flow_stats.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/flow/flow_stats.cpp.o.d"
  "/root/repo/src/geom/benchmarks.cpp" "src/CMakeFiles/lcn.dir/geom/benchmarks.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/geom/benchmarks.cpp.o.d"
  "/root/repo/src/geom/grid.cpp" "src/CMakeFiles/lcn.dir/geom/grid.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/geom/grid.cpp.o.d"
  "/root/repo/src/geom/materials.cpp" "src/CMakeFiles/lcn.dir/geom/materials.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/geom/materials.cpp.o.d"
  "/root/repo/src/geom/power_map.cpp" "src/CMakeFiles/lcn.dir/geom/power_map.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/geom/power_map.cpp.o.d"
  "/root/repo/src/geom/problem_io.cpp" "src/CMakeFiles/lcn.dir/geom/problem_io.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/geom/problem_io.cpp.o.d"
  "/root/repo/src/geom/stack.cpp" "src/CMakeFiles/lcn.dir/geom/stack.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/geom/stack.cpp.o.d"
  "/root/repo/src/network/cooling_network.cpp" "src/CMakeFiles/lcn.dir/network/cooling_network.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/network/cooling_network.cpp.o.d"
  "/root/repo/src/network/design_rules.cpp" "src/CMakeFiles/lcn.dir/network/design_rules.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/network/design_rules.cpp.o.d"
  "/root/repo/src/network/generators.cpp" "src/CMakeFiles/lcn.dir/network/generators.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/network/generators.cpp.o.d"
  "/root/repo/src/network/network_stats.cpp" "src/CMakeFiles/lcn.dir/network/network_stats.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/network/network_stats.cpp.o.d"
  "/root/repo/src/opt/evaluator.cpp" "src/CMakeFiles/lcn.dir/opt/evaluator.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/opt/evaluator.cpp.o.d"
  "/root/repo/src/opt/exhaustive.cpp" "src/CMakeFiles/lcn.dir/opt/exhaustive.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/opt/exhaustive.cpp.o.d"
  "/root/repo/src/opt/pressure_search.cpp" "src/CMakeFiles/lcn.dir/opt/pressure_search.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/opt/pressure_search.cpp.o.d"
  "/root/repo/src/opt/report.cpp" "src/CMakeFiles/lcn.dir/opt/report.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/opt/report.cpp.o.d"
  "/root/repo/src/opt/runtime_flow.cpp" "src/CMakeFiles/lcn.dir/opt/runtime_flow.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/opt/runtime_flow.cpp.o.d"
  "/root/repo/src/opt/sa.cpp" "src/CMakeFiles/lcn.dir/opt/sa.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/opt/sa.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/lcn.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/dense.cpp" "src/CMakeFiles/lcn.dir/sparse/dense.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/sparse/dense.cpp.o.d"
  "/root/repo/src/sparse/gmres.cpp" "src/CMakeFiles/lcn.dir/sparse/gmres.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/sparse/gmres.cpp.o.d"
  "/root/repo/src/sparse/ic0.cpp" "src/CMakeFiles/lcn.dir/sparse/ic0.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/sparse/ic0.cpp.o.d"
  "/root/repo/src/sparse/preconditioner.cpp" "src/CMakeFiles/lcn.dir/sparse/preconditioner.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/sparse/preconditioner.cpp.o.d"
  "/root/repo/src/sparse/solvers.cpp" "src/CMakeFiles/lcn.dir/sparse/solvers.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/sparse/solvers.cpp.o.d"
  "/root/repo/src/thermal/field.cpp" "src/CMakeFiles/lcn.dir/thermal/field.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/thermal/field.cpp.o.d"
  "/root/repo/src/thermal/image.cpp" "src/CMakeFiles/lcn.dir/thermal/image.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/thermal/image.cpp.o.d"
  "/root/repo/src/thermal/model_2rm.cpp" "src/CMakeFiles/lcn.dir/thermal/model_2rm.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/thermal/model_2rm.cpp.o.d"
  "/root/repo/src/thermal/model_4rm.cpp" "src/CMakeFiles/lcn.dir/thermal/model_4rm.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/thermal/model_4rm.cpp.o.d"
  "/root/repo/src/thermal/temp_map.cpp" "src/CMakeFiles/lcn.dir/thermal/temp_map.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/thermal/temp_map.cpp.o.d"
  "/root/repo/src/thermal/transient.cpp" "src/CMakeFiles/lcn.dir/thermal/transient.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/thermal/transient.cpp.o.d"
  "/root/repo/src/thermal/validation.cpp" "src/CMakeFiles/lcn.dir/thermal/validation.cpp.o" "gcc" "src/CMakeFiles/lcn.dir/thermal/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
