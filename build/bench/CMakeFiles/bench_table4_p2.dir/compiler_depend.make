# Empty compiler generated dependencies file for bench_table4_p2.
# This may be replaced when dependencies are built.
