file(REMOVE_RECURSE
  "CMakeFiles/bench_algorithm3.dir/bench_algorithm3.cpp.o"
  "CMakeFiles/bench_algorithm3.dir/bench_algorithm3.cpp.o.d"
  "bench_algorithm3"
  "bench_algorithm3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algorithm3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
