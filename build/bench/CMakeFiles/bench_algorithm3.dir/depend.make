# Empty dependencies file for bench_algorithm3.
# This may be replaced when dependencies are built.
