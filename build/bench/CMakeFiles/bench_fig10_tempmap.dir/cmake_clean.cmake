file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tempmap.dir/bench_fig10_tempmap.cpp.o"
  "CMakeFiles/bench_fig10_tempmap.dir/bench_fig10_tempmap.cpp.o.d"
  "bench_fig10_tempmap"
  "bench_fig10_tempmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tempmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
