# Empty dependencies file for example_runtime_management.
# This may be replaced when dependencies are built.
