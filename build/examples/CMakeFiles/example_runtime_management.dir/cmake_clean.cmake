file(REMOVE_RECURSE
  "CMakeFiles/example_runtime_management.dir/runtime_management.cpp.o"
  "CMakeFiles/example_runtime_management.dir/runtime_management.cpp.o.d"
  "example_runtime_management"
  "example_runtime_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_runtime_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
