file(REMOVE_RECURSE
  "CMakeFiles/example_explore_topologies.dir/explore_topologies.cpp.o"
  "CMakeFiles/example_explore_topologies.dir/explore_topologies.cpp.o.d"
  "example_explore_topologies"
  "example_explore_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_explore_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
