# Empty dependencies file for example_explore_topologies.
# This may be replaced when dependencies are built.
