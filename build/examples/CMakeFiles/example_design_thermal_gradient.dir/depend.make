# Empty dependencies file for example_design_thermal_gradient.
# This may be replaced when dependencies are built.
