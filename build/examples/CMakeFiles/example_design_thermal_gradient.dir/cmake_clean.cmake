file(REMOVE_RECURSE
  "CMakeFiles/example_design_thermal_gradient.dir/design_thermal_gradient.cpp.o"
  "CMakeFiles/example_design_thermal_gradient.dir/design_thermal_gradient.cpp.o.d"
  "example_design_thermal_gradient"
  "example_design_thermal_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_thermal_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
