# Empty compiler generated dependencies file for example_design_cli.
# This may be replaced when dependencies are built.
