file(REMOVE_RECURSE
  "CMakeFiles/example_design_cli.dir/design_cli.cpp.o"
  "CMakeFiles/example_design_cli.dir/design_cli.cpp.o.d"
  "example_design_cli"
  "example_design_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
