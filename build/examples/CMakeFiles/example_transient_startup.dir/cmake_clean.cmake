file(REMOVE_RECURSE
  "CMakeFiles/example_transient_startup.dir/transient_startup.cpp.o"
  "CMakeFiles/example_transient_startup.dir/transient_startup.cpp.o.d"
  "example_transient_startup"
  "example_transient_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_transient_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
