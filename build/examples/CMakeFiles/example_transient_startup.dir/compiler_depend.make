# Empty compiler generated dependencies file for example_transient_startup.
# This may be replaced when dependencies are built.
