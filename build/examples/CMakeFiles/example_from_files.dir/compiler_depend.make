# Empty compiler generated dependencies file for example_from_files.
# This may be replaced when dependencies are built.
