file(REMOVE_RECURSE
  "CMakeFiles/example_from_files.dir/from_files.cpp.o"
  "CMakeFiles/example_from_files.dir/from_files.cpp.o.d"
  "example_from_files"
  "example_from_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_from_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
