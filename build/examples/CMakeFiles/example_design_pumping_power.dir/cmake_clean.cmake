file(REMOVE_RECURSE
  "CMakeFiles/example_design_pumping_power.dir/design_pumping_power.cpp.o"
  "CMakeFiles/example_design_pumping_power.dir/design_pumping_power.cpp.o.d"
  "example_design_pumping_power"
  "example_design_pumping_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_design_pumping_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
