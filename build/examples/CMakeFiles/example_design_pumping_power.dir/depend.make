# Empty dependencies file for example_design_pumping_power.
# This may be replaced when dependencies are built.
