// Quickstart: model a 2-die liquid-cooled 3D IC, carve straight
// microchannels, run the fast (2RM) and accurate (4RM) thermal simulators,
// and print the paper's metrics (T_max, ΔT, W_pump).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_quickstart
#include <cstdio>

#include "network/design_rules.hpp"
#include "network/generators.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"
#include "thermal/temp_map.hpp"

int main() {
  using namespace lcn;

  // 1. Chip geometry: a 5.1 mm x 5.1 mm die divided into 51x51 basic cells
  //    of 100 µm, stacked as [active | bulk | channel | active | bulk].
  CoolingProblem problem;
  problem.grid = Grid2D(51, 51, 100e-6);
  problem.stack = make_interlayer_stack(/*dies=*/2, /*channel_height=*/200e-6);

  // 2. Heat dissipation: 10 W split across the two dies with hot spots.
  problem.source_power.push_back(synthesize_power_map(problem.grid, 6.0, 1));
  problem.source_power.push_back(synthesize_power_map(problem.grid, 4.0, 2));
  problem.validate();

  // 3. Cooling network: straight channels west -> east on every even row,
  //    checked against the paper's design rules.
  const CoolingNetwork network = make_straight_channels(problem.grid);
  require_clean(network);
  std::printf("network: %zu liquid cells, %zu ports\n",
              network.liquid_count(), network.ports().size());

  // 4. Simulate at a few pump operating points with the fast 2RM model.
  const Thermal2RM fast(problem, {network}, /*thermal_cell=*/4);
  std::printf("\n%8s %10s %10s %12s\n", "P (kPa)", "Tmax (K)", "dT (K)",
              "W_pump (mW)");
  for (double p_sys : {2000.0, 8000.0, 32000.0}) {
    const ThermalField field = fast.simulate(p_sys);
    std::printf("%8.1f %10.2f %10.2f %12.4f\n", p_sys / 1e3, field.t_max,
                field.delta_t, fast.pumping_power(p_sys) * 1e3);
  }

  // 5. Sign off one operating point with the accurate 4RM model and render
  //    the bottom source layer.
  const Thermal4RM accurate(problem, {network});
  const ThermalField field = accurate.simulate(8000.0);
  std::printf("\n4RM sign-off at 8 kPa: Tmax = %.2f K, dT = %.2f K\n",
              field.t_max, field.delta_t);
  std::printf("\nbottom source layer:\n%s", ascii_heatmap(field, 0, 51).c_str());
  return 0;
}
