// Problem 1 end-to-end: design a tree-like cooling network for an
// ICCAD-2015-style benchmark that minimizes pumping power under ΔT* and
// T*_max, and compare it against the straight-channel baseline.
//
// Runtime is governed by LCN_SA_SCALE (default here: a quick schedule).
#include <cstdio>

#include "common/env.hpp"
#include "opt/sa.hpp"

int main() {
  using namespace lcn;

  const BenchmarkCase bench = make_iccad_case(1);
  std::printf("benchmark %s: %d dies, %.1f W, dT* = %.0f K, Tmax* = %.2f K\n",
              bench.name.c_str(), bench.dies(), bench.problem.total_power(),
              bench.constraints.delta_t_max, bench.constraints.t_max);

  // Baseline: straight channels, best of the four directions.
  const BaselineOutcome base =
      best_straight_baseline(bench, DesignObjective::kPumpingPower);
  if (base.feasible) {
    std::printf("baseline: P_sys = %.2f kPa, W_pump = %.3f mW, "
                "Tmax = %.1f K, dT = %.2f K\n",
                base.eval.p_sys / 1e3, base.eval.w_pump * 1e3,
                base.eval.at_p.t_max, base.eval.at_p.delta_t);
  } else {
    std::printf("baseline: infeasible under the constraints\n");
  }

  // SA-optimized hierarchical tree-like network (Algorithm 1).
  const double scale = env_double("LCN_SA_SCALE", 0.15);
  TreeTopologyOptimizer optimizer(bench, DesignObjective::kPumpingPower,
                                  /*seed=*/2017);
  const DesignOutcome ours = optimizer.run(default_p1_stages(scale));
  if (!ours.feasible) {
    std::printf("tree-like: SA found no feasible design at this scale\n");
    return 1;
  }
  std::printf("tree-like: P_sys = %.2f kPa, W_pump = %.3f mW, "
              "Tmax = %.1f K, dT = %.2f K  (direction %d, %.0f s)\n",
              ours.eval.p_sys / 1e3, ours.eval.w_pump * 1e3,
              ours.eval.at_p.t_max, ours.eval.at_p.delta_t, ours.direction,
              ours.seconds);
  if (base.feasible) {
    std::printf("pumping-power saving vs baseline: %.1f%%\n",
                100.0 * (1.0 - ours.eval.w_pump / base.eval.w_pump));
  }

  // The design is serializable for hand-off to layout tools.
  const std::string text = ours.network.to_text();
  std::printf("\nserialized design: %zu bytes (`CoolingNetwork::from_text` "
              "round-trips it)\n",
              text.size());
  return 0;
}
