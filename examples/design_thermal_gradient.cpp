// Problem 2 end-to-end: design a cooling network minimizing the thermal
// gradient ΔT under a pumping-power budget (0.1% of die power) and T*_max,
// as in the paper's Table 4.
#include <cstdio>

#include "common/env.hpp"
#include "opt/sa.hpp"

int main() {
  using namespace lcn;

  BenchmarkCase bench = make_iccad_case(2);
  bench.constraints.w_pump_max = problem2_pump_budget(bench);
  std::printf("benchmark %s: %.1f W, W*_pump = %.2f mW, Tmax* = %.2f K\n",
              bench.name.c_str(), bench.problem.total_power(),
              bench.constraints.w_pump_max * 1e3, bench.constraints.t_max);

  const BaselineOutcome base =
      best_straight_baseline(bench, DesignObjective::kThermalGradient);
  if (base.feasible) {
    std::printf("baseline: dT = %.2f K at P_sys = %.2f kPa "
                "(W_pump = %.2f mW)\n",
                base.eval.at_p.delta_t, base.eval.p_sys / 1e3,
                base.eval.w_pump * 1e3);
  } else {
    std::printf("baseline: infeasible under the budget\n");
  }

  const double scale = env_double("LCN_SA_SCALE", 0.15);
  TreeTopologyOptimizer optimizer(bench, DesignObjective::kThermalGradient,
                                  /*seed=*/2017);
  const DesignOutcome ours = optimizer.run(default_p2_stages(scale));
  if (!ours.feasible) {
    std::printf("tree-like: SA found no feasible design at this scale\n");
    return 1;
  }
  std::printf("tree-like: dT = %.2f K at P_sys = %.2f kPa "
              "(W_pump = %.2f mW, direction %d, %.0f s)\n",
              ours.eval.at_p.delta_t, ours.eval.p_sys / 1e3,
              ours.eval.w_pump * 1e3, ours.direction, ours.seconds);
  if (base.feasible) {
    std::printf("thermal-gradient reduction vs baseline: %.1f%%\n",
                100.0 * (1.0 - ours.eval.at_p.delta_t /
                                   base.eval.at_p.delta_t));
  }
  return 0;
}
