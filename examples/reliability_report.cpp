// Reliability report: take a cooling design at its nominal operating point,
// inject faults — clogged channels, pump droop, warm inlet coolant, power
// excursions — and print a degradation table: what each scenario does to
// T_max / ΔT, which scenarios break the limits, and how much extra pump
// pressure (if any) buys the system back (DESIGN.md §S17).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/example_reliability_report
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/evaluator.hpp"
#include "reliability/sweep.hpp"

int main() {
  using namespace lcn;

  // 1. The system under study: ICCAD-like case 1 with a hierarchical
  //    tree-like network, operated at its lowest feasible pumping power.
  const BenchmarkCase bench = make_iccad_case(1);
  const CoolingNetwork network = make_tree_network(
      bench.problem.grid, make_uniform_layout(bench.problem.grid, 30, 64));

  SystemEvaluator eval(bench.problem, network,
                       SimConfig{ThermalModelKind::k2RM, 4});
  const EvalResult nominal = evaluate_p1(eval, bench.constraints);
  if (!nominal.feasible) {
    std::printf("nominal design infeasible; nothing to degrade\n");
    return 1;
  }
  std::printf("nominal: P_sys %.0f Pa, W_pump %.4f W, T_max %.2f K "
              "(limit %.2f), dT %.2f K (limit %.2f)\n\n",
              nominal.p_sys, nominal.w_pump, nominal.at_p.t_max,
              bench.constraints.t_max, nominal.at_p.delta_t,
              bench.constraints.delta_t_max);

  // 2. Monte-Carlo degradation sweep with recovery planning.
  SweepOptions options;
  options.scenarios = 32;
  options.seed = 0xfa017u;
  options.search.rel_precision = 1e-2;
  options.search.max_probes = 40;
  const SweepReport report = run_sweep(bench.problem, network,
                                       bench.constraints, nominal.p_sys,
                                       options);

  // 3. The degradation table: one row per sampled scenario.
  TextTable table({"#", "scenario", "T_max (K)", "dT (K)", "margin (K)",
                   "status", "recovery P (Pa)", "extra W (mW)"});
  for (std::size_t k = 0; k < report.outcomes.size(); ++k) {
    const ScenarioOutcome& out = report.outcomes[k];
    if (!out.evaluated) {
      table.add_row({cell_int(static_cast<long>(k)), out.scenario.describe(),
                     cell_na(), cell_na(), cell_na(), "unrecoverable",
                     cell_na(), cell_na()});
      continue;
    }
    const bool recovered = out.recovery == RecoveryKind::kRecovered;
    table.add_row(
        {cell_int(static_cast<long>(k)),
         out.scenario.empty() ? "(no faults)" : out.scenario.describe(),
         cell(out.at_p.t_max), cell(out.at_p.delta_t), cell(out.t_margin),
         out.feasible ? "ok" : recovery_kind_name(out.recovery),
         recovered ? cell(out.recovery_p_sys, 0) : cell_na(),
         recovered ? cell((out.recovery_w_pump - report.w_nominal) * 1e3, 2)
                   : cell_na()});
  }
  std::printf("%s\n", table.str().c_str());

  // 4. Summary statistics.
  std::printf("scenarios: %zu evaluated of %zu sampled\n", report.evaluated,
              report.outcomes.size());
  std::printf("P(T_max > T*_max)  = %.3f\n", report.p_exceed_t_max);
  std::printf("P(dT > dT*)        = %.3f\n", report.p_exceed_delta_t);
  std::printf("P(infeasible)      = %.3f   (%zu recovered, %zu "
              "unrecoverable)\n",
              report.p_infeasible, report.recovered, report.unrecoverable);
  std::printf("T_max margin (K)   : q10 %.2f, median %.2f, q90 %.2f\n",
              report.t_margin_q10, report.t_margin_q50, report.t_margin_q90);
  std::printf("dT margin (K)      : q10 %.2f, median %.2f, q90 %.2f\n",
              report.dt_margin_q10, report.dt_margin_q50,
              report.dt_margin_q90);
  if (report.recovered > 0) {
    std::printf("mean recovery cost : %+.2f mW pumping power\n",
                report.mean_recovery_w_extra * 1e3);
  }
  if (report.worst_scenario >= 0) {
    const ScenarioOutcome& worst =
        report.outcomes[static_cast<std::size_t>(report.worst_scenario)];
    std::printf("worst scenario     : #%d %s\n", report.worst_scenario,
                worst.scenario.describe().c_str());
  }
  std::printf("sweep wall time    : %.2f s\n", report.seconds);
  return 0;
}
