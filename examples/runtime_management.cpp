// Run-time flow-rate management (paper §7 future work): a fixed tree-like
// cooling network faces a day/night-style workload with three power phases;
// the controller adapts the pump pressure per phase and saves pumping energy
// versus a worst-case-always pump setting.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/runtime_flow.hpp"

int main() {
  using namespace lcn;

  const BenchmarkCase bench = make_iccad_case(1);
  const CoolingNetwork net = make_tree_network(
      bench.problem.grid, make_uniform_layout(bench.problem.grid, 30, 64));

  // Three workload phases: idle, typical, burst (per-die scale factors).
  const std::vector<PowerPhase> phases = {
      {{0.3, 0.4}, 10.0},  // idle-ish, 10 s
      {{1.0, 1.0}, 5.0},   // nominal, 5 s
      {{1.3, 1.1}, 2.0},   // burst, 2 s
  };

  const RuntimePlan plan =
      plan_runtime_flow(bench.problem, net, bench.constraints, phases);
  if (!plan.feasible) {
    std::printf("no feasible pump schedule for this network\n");
    return 1;
  }

  TextTable table({"phase", "scale (die0/die1)", "duration (s)",
                   "P_sys (kPa)", "W_pump (mW)", "Tmax (K)", "dT (K)"});
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhasePlan& pp = plan.phases[i];
    table.add_row({cell_int(static_cast<long>(i)),
                   strfmt("%.1f/%.1f", phases[i].layer_scale[0],
                          phases[i].layer_scale[1]),
                   cell(phases[i].duration, 1), cell(pp.p_sys / 1e3, 2),
                   cell(pp.w_pump * 1e3, 3), cell(pp.at_p.t_max, 2),
                   cell(pp.at_p.delta_t, 2)});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nadaptive pumping energy: %.3f mJ\n",
              plan.adaptive_energy * 1e3);
  std::printf("worst-case-always energy: %.3f mJ\n",
              plan.worst_case_energy * 1e3);
  std::printf("energy saving from flow-rate adaptation: %.1f%%\n",
              100.0 * plan.energy_saving());

  // Dynamic sanity check: integrate the whole schedule transiently (state
  // carries across phase switches) and confirm no thermal overshoot.
  const TransientCheck check = verify_plan_transient(
      bench.problem, net, bench.constraints, phases, plan, /*dt=*/5e-3);
  std::printf("\ntransient verification: peak Tmax = %.2f K (limit %.2f K) "
              "=> %s\n",
              check.peak_t_max, bench.constraints.t_max,
              check.within_t_max ? "OK" : "VIOLATED");
  return 0;
}
