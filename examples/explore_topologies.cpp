// Topology exploration (the paper's §4.3 "early exploration", condensed):
// compare straight channels, a serpentine, a comb manifold, and tree-like
// networks with different branch positions at the same pump operating point
// and at their individually optimal operating points.
#include <cstdio>
#include <vector>

#include "common/table.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/evaluator.hpp"

int main() {
  using namespace lcn;

  const BenchmarkCase bench = make_iccad_case(1);
  const Grid2D& grid = bench.problem.grid;
  const SimConfig sim{ThermalModelKind::k2RM, 4};

  struct Candidate {
    const char* name;
    CoolingNetwork net;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"straight", make_straight_channels(grid)});
  candidates.push_back({"serpentine", make_serpentine(grid)});
  candidates.push_back({"comb", make_comb(grid)});
  candidates.push_back({"tree b=(20,50)", make_tree_network(
                            grid, make_uniform_layout(grid, 20, 50))});
  candidates.push_back({"tree b=(30,64)", make_tree_network(
                            grid, make_uniform_layout(grid, 30, 64))});
  candidates.push_back({"tree b=(50,80)", make_tree_network(
                            grid, make_uniform_layout(grid, 50, 80))});

  std::printf("fixed operating point, P_sys = 12 kPa:\n");
  TextTable fixed({"network", "liquid cells", "R_sys (Pa.s/m^3)", "dT (K)",
                   "Tmax (K)", "W_pump (mW)"});
  for (Candidate& c : candidates) {
    SystemEvaluator eval(bench.problem, c.net, sim);
    const ThermalProbe p = eval.probe(12000.0);
    fixed.add_row({c.name, cell_int(static_cast<long>(c.net.liquid_count())),
                   cell_sci(eval.system_resistance(), 2), cell(p.delta_t, 2),
                   cell(p.t_max, 2), cell(eval.pumping_power(12000.0) * 1e3, 3)});
  }
  std::printf("%s", fixed.str().c_str());

  std::printf("\nper-network optimal operating point (Problem 1 evaluation,\n"
              "dT* = %.0f K, Tmax* = %.2f K):\n",
              bench.constraints.delta_t_max, bench.constraints.t_max);
  TextTable opt({"network", "feasible", "P_sys (kPa)", "W_pump (mW)"});
  for (Candidate& c : candidates) {
    SystemEvaluator eval(bench.problem, c.net, sim);
    const EvalResult r = evaluate_p1(eval, bench.constraints);
    opt.add_row({c.name, r.feasible ? "yes" : "no",
                 r.feasible ? cell(r.p_sys / 1e3, 2) : cell_na(),
                 r.feasible ? cell(r.w_pump * 1e3, 3) : cell_na()});
  }
  std::printf("%s", opt.str().c_str());
  std::printf("\nobservation (paper §4.3): the tree-like structure beats the\n"
              "manual styles by matching wall area to the coolant's\n"
              "temperature rise; serpentines have huge fluid resistance.\n");
  return 0;
}
