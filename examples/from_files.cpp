// File-driven flow (paper Algorithm 1 inputs are "stack description and
// floorplan files"): load a problem from the shipped demo files, check a
// few candidate networks, and write the winning design plus its temperature
// map to disk.
#include <cstdio>

#include "common/table.hpp"
#include "geom/problem_io.hpp"
#include "network/generators.hpp"
#include "network/network_stats.hpp"
#include "opt/evaluator.hpp"
#include "thermal/image.hpp"

int main() {
  using namespace lcn;

  const std::string data_dir = LCN_DATA_DIR;
  const ProblemDescription desc =
      load_problem(data_dir + "/demo_stack.txt",
                   {data_dir + "/demo_die0.flp", data_dir + "/demo_die1.flp"});
  std::printf("loaded %dx%d grid, %d layers, %.2f W total, dT* = %.1f K\n",
              desc.problem.grid.rows(), desc.problem.grid.cols(),
              desc.problem.stack.layer_count(), desc.problem.total_power(),
              desc.constraints.delta_t_max);

  const Grid2D& grid = desc.problem.grid;
  const double h_c = desc.problem.stack
                         .layer(desc.problem.stack.channel_layers().front())
                         .thickness;

  struct Candidate {
    const char* name;
    CoolingNetwork net;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"straight", make_straight_channels(grid)});
  candidates.push_back({"tree(16,32)", make_tree_network(
                            grid, make_uniform_layout(grid, 16, 32))});
  candidates.push_back(
      {"modulated(16 rows)",
       make_modulated_straight(
           grid, density_profile_from_power(desc.problem.source_power[0], 16))});

  TextTable table({"network", "branches", "side wall (mm^2)", "feasible",
                   "P_sys (kPa)", "W_pump (mW)"});
  const Candidate* best = nullptr;
  EvalResult best_eval = EvalResult::infeasible_result();
  for (const Candidate& c : candidates) {
    const NetworkStats stats = compute_network_stats(c.net, h_c);
    SystemEvaluator eval(desc.problem, c.net, {ThermalModelKind::k2RM, 3});
    const EvalResult r = evaluate_p1(eval, desc.constraints);
    table.add_row({c.name, cell_int(static_cast<long>(stats.branch_cells)),
                   cell(stats.side_wall_area * 1e6, 2),
                   r.feasible ? "yes" : "no",
                   r.feasible ? cell(r.p_sys / 1e3, 2) : cell_na(),
                   r.feasible ? cell(r.w_pump * 1e3, 3) : cell_na()});
    if (r.score < best_eval.score) {
      best_eval = r;
      best = &c;
    }
  }
  std::printf("%s", table.str().c_str());
  if (best == nullptr || !best_eval.feasible) {
    std::printf("no feasible candidate\n");
    return 1;
  }
  std::printf("\nwinner: %s at %.2f kPa\n", best->name,
              best_eval.p_sys / 1e3);

  // Persist the design and its sign-off temperature map.
  write_text_file("demo_design.network", best->net.to_text());
  SystemEvaluator signoff(desc.problem, best->net,
                          {ThermalModelKind::k4RM, 1});
  const ThermalField field = signoff.field(best_eval.p_sys);
  write_text_file("demo_design_bottom_layer.pgm",
                  temperature_pgm(field, 0, 4));
  std::printf("wrote demo_design.network and demo_design_bottom_layer.pgm\n");
  return 0;
}
