// Transient extension (paper §2.3): pump-on startup of a liquid-cooled
// stack — integrate the RC network from a cold start and watch T_max and ΔT
// settle to the steady-state values.
#include <cstdio>

#include "network/generators.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/transient.hpp"

int main() {
  using namespace lcn;

  CoolingProblem problem;
  problem.grid = Grid2D(51, 51, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  problem.source_power.push_back(synthesize_power_map(problem.grid, 8.0, 3));
  problem.source_power.push_back(synthesize_power_map(problem.grid, 6.0, 4));

  const CoolingNetwork net = make_straight_channels(problem.grid);
  const Thermal2RM sim(problem, {net}, 4);
  const double p_sys = 6000.0;

  const AssembledThermal system = sim.assemble(p_sys);
  const ThermalField steady = solve_steady(system);
  std::printf("steady state at %.1f kPa: Tmax = %.2f K, dT = %.2f K\n\n",
              p_sys / 1e3, steady.t_max, steady.delta_t);

  TransientOptions options;
  options.dt = 1e-3;
  options.steps = 120;
  const auto samples = simulate_transient(
      system, std::vector<double>(system.matrix.rows(),
                                  problem.inlet_temperature),
      options);

  std::printf("%10s %10s %10s %12s\n", "t (ms)", "Tmax (K)", "dT (K)",
              "settled (%)");
  for (std::size_t i = 0; i < samples.size(); i += 10) {
    const TransientSample& s = samples[i];
    const double settled = 100.0 * (s.t_max - problem.inlet_temperature) /
                           (steady.t_max - problem.inlet_temperature);
    std::printf("%10.1f %10.2f %10.2f %12.1f\n", s.time * 1e3, s.t_max,
                s.delta_t, settled);
  }
  const TransientSample& last = samples.back();
  std::printf("\nafter %.0f ms: Tmax within %.2f K of steady state\n",
              last.time * 1e3, steady.t_max - last.t_max);
  return 0;
}
