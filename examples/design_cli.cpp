// Command-line design driver: the full Algorithm-1 flow behind flags.
//
//   example_design_cli [--case N] [--objective p1|p2] [--scale S]
//                      [--seed K] [--out design.network]
//
// Defaults run a quick Problem-1 design of case 2 and print the outcome;
// with --out the winning network is serialized for downstream tools.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/manifest.hpp"
#include "common/strings.hpp"
#include "common/task_context.hpp"
#include "common/trace.hpp"
#include "geom/problem_io.hpp"
#include "opt/report.hpp"
#include "opt/sa.hpp"

namespace {

using namespace lcn;

// Ctrl-C requests cooperative cancellation through the same TaskContext flag
// the service scheduler uses (DESIGN.md §S22): the SA unwinds at its next
// iteration boundary instead of the process dying mid-write, so the trace
// sink is flushed and a final manifest still comes out.
std::atomic<bool> g_interrupted{false};

void on_interrupt(int /*sig*/) {
  g_interrupted.store(true, std::memory_order_relaxed);
}

struct CliOptions {
  int case_id = 2;
  DesignObjective objective = DesignObjective::kPumpingPower;
  double scale = 0.15;
  std::uint64_t seed = 1;
  std::string out_path;
};

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--case") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.case_id = std::atoi(v);
      if (options.case_id < 1 || options.case_id > 5) return false;
    } else if (arg == "--objective") {
      const char* v = next_value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "p1") == 0) {
        options.objective = DesignObjective::kPumpingPower;
      } else if (std::strcmp(v, "p2") == 0) {
        options.objective = DesignObjective::kThermalGradient;
      } else {
        return false;
      }
    } else if (arg == "--scale") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.scale = std::atof(v);
      if (options.scale <= 0.0) return false;
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.out_path = v;
    } else if (arg == "--help") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  if (!parse_args(argc, argv, options)) {
    std::printf(
        "usage: %s [--case 1..5] [--objective p1|p2] [--scale S]\n"
        "          [--seed K] [--out design.network]\n",
        argv[0]);
    return 2;
  }

  BenchmarkCase bench = make_iccad_case(options.case_id);
  const bool p2 = options.objective == DesignObjective::kThermalGradient;
  if (p2) bench.constraints.w_pump_max = problem2_pump_budget(bench);

  std::printf("case %d (%s): %.1f W, %s\n", options.case_id,
              bench.name.c_str(), bench.problem.total_power(),
              p2 ? "minimize dT under a pumping budget"
                 : "minimize W_pump under dT*/Tmax*");

  const auto stages = p2 ? default_p2_stages(options.scale)
                         : default_p1_stages(options.scale);
  std::printf("%s", format_stages(stages).c_str());

  std::signal(SIGINT, on_interrupt);
  std::signal(SIGTERM, on_interrupt);
  TaskContext ctx;
  ctx.cancel = &g_interrupted;
  ScopedTaskContext scope(&ctx);

  TreeTopologyOptimizer optimizer(bench, options.objective, options.seed);
  DesignOutcome outcome;
  try {
    outcome = optimizer.run(stages);
  } catch (const Cancelled&) {
    if (trace::active()) trace::stop();  // drain rings, close the sink
    std::fprintf(stderr, "interrupted: design cancelled cleanly\n");
    std::printf("manifest: %s\n", run_manifest().json().c_str());
    return 130;
  }
  if (!outcome.feasible) {
    std::printf("result: infeasible (no design met the constraints)\n");
    return 1;
  }
  std::printf(
      "result: P_sys = %.2f kPa, W_pump = %.3f mW, Tmax = %.2f K, "
      "dT = %.2f K\n"
      "        direction %d, %zu candidate evaluations, %.0f s\n",
      outcome.eval.p_sys / 1e3, outcome.eval.w_pump * 1e3,
      outcome.eval.at_p.t_max, outcome.eval.at_p.delta_t, outcome.direction,
      outcome.evaluations, outcome.seconds);

  if (!options.out_path.empty()) {
    write_text_file(options.out_path, outcome.network.to_text());
    std::printf("design written to %s\n", options.out_path.c_str());
  }

  std::printf("\n%s",
              design_report(bench, outcome.network, outcome.eval.p_sys)
                  .c_str());
  return 0;
}
