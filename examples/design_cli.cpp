// Command-line design driver: the full Algorithm-1 flow behind flags.
//
//   example_design_cli [--case N] [--objective p1|p2] [--scale S]
//                      [--seed K] [--out design.network]
//
// Defaults run a quick Problem-1 design of case 2 and print the outcome;
// with --out the winning network is serialized for downstream tools.
//
// Scenario mode (DESIGN.md §S23) time-steps a design instead of searching:
//
//   example_design_cli --scenario trace.ndjson [--case N]
//                      [--network design.network] [--format csv|jsonl]
//                      [--out rows.csv]
//
// The scenario file is NDJSON (scenario_io.hpp); rows stream to stdout (or
// --out) as they are produced, so a Ctrl-C mid-run still leaves a usable
// prefix and exits cleanly through the cooperative cancel flag.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/manifest.hpp"
#include "common/strings.hpp"
#include "common/task_context.hpp"
#include "common/trace.hpp"
#include "geom/problem_io.hpp"
#include "network/generators.hpp"
#include "opt/report.hpp"
#include "opt/sa.hpp"
#include "scenario/scenario_io.hpp"

namespace {

using namespace lcn;

// Ctrl-C requests cooperative cancellation through the same TaskContext flag
// the service scheduler uses (DESIGN.md §S22): the SA unwinds at its next
// iteration boundary instead of the process dying mid-write, so the trace
// sink is flushed and a final manifest still comes out.
std::atomic<bool> g_interrupted{false};

void on_interrupt(int /*sig*/) {
  g_interrupted.store(true, std::memory_order_relaxed);
}

struct CliOptions {
  int case_id = 2;
  DesignObjective objective = DesignObjective::kPumpingPower;
  double scale = 0.15;
  std::uint64_t seed = 1;
  std::string out_path;
  std::string scenario_path;  ///< non-empty switches to scenario mode
  std::string network_path;   ///< scenario mode: saved design to simulate
  bool jsonl = false;         ///< scenario rows as JSONL instead of CSV
};

bool parse_args(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--case") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.case_id = std::atoi(v);
      if (options.case_id < 1 || options.case_id > 5) return false;
    } else if (arg == "--objective") {
      const char* v = next_value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "p1") == 0) {
        options.objective = DesignObjective::kPumpingPower;
      } else if (std::strcmp(v, "p2") == 0) {
        options.objective = DesignObjective::kThermalGradient;
      } else {
        return false;
      }
    } else if (arg == "--scale") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.scale = std::atof(v);
      if (options.scale <= 0.0) return false;
    } else if (arg == "--seed") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.out_path = v;
    } else if (arg == "--scenario") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.scenario_path = v;
    } else if (arg == "--network") {
      const char* v = next_value();
      if (v == nullptr) return false;
      options.network_path = v;
    } else if (arg == "--format") {
      const char* v = next_value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "csv") == 0) {
        options.jsonl = false;
      } else if (std::strcmp(v, "jsonl") == 0) {
        options.jsonl = true;
      } else {
        return false;
      }
    } else if (arg == "--help") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// The canonical uniform layout (branch columns at cols/3 and 2·cols/3,
/// rounded even) the SA starts from — the scenario default when no saved
/// design is given.
CoolingNetwork scenario_network(const BenchmarkCase& bench,
                                const CliOptions& options) {
  if (!options.network_path.empty()) {
    return CoolingNetwork::from_text(read_text_file(options.network_path));
  }
  const Grid2D& grid = bench.problem.grid;
  int b1 = grid.cols() / 3;
  b1 -= b1 % 2;
  int b2 = 2 * grid.cols() / 3;
  b2 -= b2 % 2;
  const TreeTopologyOptimizer optimizer(bench, DesignObjective::kPumpingPower,
                                        1);
  return optimizer.realize(make_uniform_layout(grid, b1, b2), 0);
}

int run_scenario_mode(const CliOptions& options) {
  const BenchmarkCase bench = make_iccad_case(options.case_id);
  const ScenarioConfig config = load_scenario_file(options.scenario_path);
  const CoolingNetwork network = scenario_network(bench, options);

  std::FILE* out = stdout;
  if (!options.out_path.empty()) {
    out = std::fopen(options.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   options.out_path.c_str());
      return 1;
    }
  }
  if (!options.jsonl) {
    std::fprintf(out, "%s\n", scenario_csv_header().c_str());
  }

  const bool jsonl = options.jsonl;
  int status = 0;
  try {
    const ScenarioResult result = run_scenario(
        bench.problem, network, config, [&](const ScenarioSample& sample) {
          const std::string row = jsonl ? scenario_sample_json(sample)
                                        : scenario_sample_csv(sample);
          std::fprintf(out, "%s\n", row.c_str());
        });
    std::fflush(out);
    std::fprintf(stderr,
                 "scenario: %d steps, peak Tmax = %.2f K, peak dT = %.2f K, "
                 "final inlet = %.2f K\n",
                 result.steps, result.peak_t_max, result.peak_delta_t,
                 result.final_inlet);
  } catch (const Cancelled&) {
    std::fflush(out);
    if (trace::active()) trace::stop();
    std::fprintf(stderr, "interrupted: scenario cancelled cleanly\n");
    status = 130;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenario failed: %s\n", e.what());
    status = 1;
  }
  if (out != stdout) std::fclose(out);
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  // Ring-overflow data loss in a recorded trace must not be silent; every
  // exit path (including Ctrl-C unwinds) gets the one-line warning.
  std::atexit(trace::warn_if_dropped);
  CliOptions options;
  if (!parse_args(argc, argv, options)) {
    std::printf(
        "usage: %s [--case 1..5] [--objective p1|p2] [--scale S]\n"
        "          [--seed K] [--out design.network]\n"
        "       %s --scenario trace.ndjson [--case 1..5]\n"
        "          [--network design.network] [--format csv|jsonl]"
        " [--out rows]\n",
        argv[0], argv[0]);
    return 2;
  }

  if (!options.scenario_path.empty()) {
    std::signal(SIGINT, on_interrupt);
    std::signal(SIGTERM, on_interrupt);
    TaskContext ctx;
    ctx.cancel = &g_interrupted;
    ScopedTaskContext scope(&ctx);
    return run_scenario_mode(options);
  }

  BenchmarkCase bench = make_iccad_case(options.case_id);
  const bool p2 = options.objective == DesignObjective::kThermalGradient;
  if (p2) bench.constraints.w_pump_max = problem2_pump_budget(bench);

  std::printf("case %d (%s): %.1f W, %s\n", options.case_id,
              bench.name.c_str(), bench.problem.total_power(),
              p2 ? "minimize dT under a pumping budget"
                 : "minimize W_pump under dT*/Tmax*");

  const auto stages = p2 ? default_p2_stages(options.scale)
                         : default_p1_stages(options.scale);
  std::printf("%s", format_stages(stages).c_str());

  std::signal(SIGINT, on_interrupt);
  std::signal(SIGTERM, on_interrupt);
  TaskContext ctx;
  ctx.cancel = &g_interrupted;
  ScopedTaskContext scope(&ctx);

  TreeTopologyOptimizer optimizer(bench, options.objective, options.seed);
  DesignOutcome outcome;
  try {
    outcome = optimizer.run(stages);
  } catch (const Cancelled&) {
    if (trace::active()) trace::stop();  // drain rings, close the sink
    std::fprintf(stderr, "interrupted: design cancelled cleanly\n");
    std::printf("manifest: %s\n", run_manifest().json().c_str());
    return 130;
  }
  if (!outcome.feasible) {
    std::printf("result: infeasible (no design met the constraints)\n");
    return 1;
  }
  std::printf(
      "result: P_sys = %.2f kPa, W_pump = %.3f mW, Tmax = %.2f K, "
      "dT = %.2f K\n"
      "        direction %d, %zu candidate evaluations, %.0f s\n",
      outcome.eval.p_sys / 1e3, outcome.eval.w_pump * 1e3,
      outcome.eval.at_p.t_max, outcome.eval.at_p.delta_t, outcome.direction,
      outcome.evaluations, outcome.seconds);

  if (!options.out_path.empty()) {
    write_text_file(options.out_path, outcome.network.to_text());
    std::printf("design written to %s\n", options.out_path.c_str());
  }

  std::printf("\n%s",
              design_report(bench, outcome.network, outcome.eval.p_sys)
                  .c_str());
  return 0;
}
