// lcn_serve: the design-as-a-service daemon (DESIGN.md §S22).
//
//   lcn_serve [--addr unix:/path | tcp:host:port] [--jobs N]
//
// Listens for newline-delimited JSON requests (see README "Serving"),
// executes design / evaluate / sweep jobs through the fair-share scheduler,
// and streams sa_iter progress to clients that ask for it. SIGTERM/SIGINT
// drain: the accept loop stops, every accepted job runs to completion and
// delivers its result, then the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/trace.hpp"
#include "service/server.hpp"

namespace {

lcn::service::Server* g_server = nullptr;

void on_signal(int /*sig*/) {
  // Async-signal-safe: just flip the server's atomic; run() polls it.
  if (g_server != nullptr) g_server->request_shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  // Ring-overflow data loss in a recorded trace must not be silent; every
  // exit path gets the one-line warning.
  std::atexit(lcn::trace::warn_if_dropped);
  lcn::service::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--addr" && i + 1 < argc) {
      options.address = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      options.max_running = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else {
      std::printf(
          "usage: %s [--addr unix:/path|tcp:host:port] [--jobs N]\n"
          "address default: LCN_SERVE_ADDR, then tcp:127.0.0.1:7733\n",
          argv[0]);
      return arg == "--help" ? 0 : 2;
    }
  }

  try {
    lcn::service::Server server(options);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    // Announce the resolved address on stdout so wrappers (CI smoke, the
    // python client) can pick up an ephemeral tcp port.
    std::printf("listening %s\n", server.address().c_str());
    std::fflush(stdout);
    server.run();
    g_server = nullptr;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "lcn_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
