// S17 — Monte-Carlo reliability sweep over a finished design. Optimizes a
// small Problem-1 design on ICCAD case 1, then sweeps N fault scenarios at
// serial and parallel pool widths, reporting exceedance probabilities,
// margin quantiles, and recovery statistics. The sweep statistics must be
// bit-identical across widths (PR-1 serial-equivalence contract extended to
// the reliability engine); every measurement is appended to
// bench_results/BENCH_reliability.json together with the scenario counters.
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "network/generators.hpp"
#include "opt/sa.hpp"
#include "reliability/sweep.hpp"

namespace {

using namespace lcn;

bool reports_agree(const SweepReport& a, const SweepReport& b) {
  return a.p_exceed_t_max == b.p_exceed_t_max &&
         a.p_exceed_delta_t == b.p_exceed_delta_t &&
         a.p_infeasible == b.p_infeasible && a.recovered == b.recovered &&
         a.unrecoverable == b.unrecoverable &&
         a.t_margin_q10 == b.t_margin_q10 &&
         a.t_margin_q50 == b.t_margin_q50 &&
         a.t_margin_q90 == b.t_margin_q90 &&
         a.dt_margin_q10 == b.dt_margin_q10 &&
         a.dt_margin_q50 == b.dt_margin_q50 &&
         a.dt_margin_q90 == b.dt_margin_q90 &&
         a.worst_scenario == b.worst_scenario &&
         a.mean_recovery_w_extra == b.mean_recovery_w_extra;
}

std::vector<std::pair<std::string, double>> report_metrics(
    const SweepReport& report) {
  return {{"p_exceed_t_max", report.p_exceed_t_max},
          {"p_exceed_delta_t", report.p_exceed_delta_t},
          {"p_infeasible", report.p_infeasible},
          {"recovered", static_cast<double>(report.recovered)},
          {"unrecoverable", static_cast<double>(report.unrecoverable)},
          {"t_margin_q10_k", report.t_margin_q10},
          {"t_margin_q50_k", report.t_margin_q50},
          {"dt_margin_q50_k", report.dt_margin_q50},
          {"mean_recovery_w_extra_w", report.mean_recovery_w_extra},
          {"worst_scenario", static_cast<double>(report.worst_scenario)}};
}

}  // namespace

int main() {
  benchutil::banner("Reliability engine — Monte-Carlo degradation sweep",
                    "DESIGN.md §S17 (fault injection + recovery planning)");
  const bool fast = env_flag("LCN_FAST");
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t wide = std::max<std::size_t>(
      2, static_cast<std::size_t>(env_double("LCN_THREADS", 4)));

  const BenchmarkCase bench = make_iccad_case(1);

  // A quick Problem-1 run yields the design under test and its nominal
  // operating pressure; the sweep then asks how that design degrades.
  TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower, 0xdac17u);
  const DesignOutcome design = opt.run(default_p1_stages(fast ? 0.05 : 0.1));
  if (!design.feasible) {
    std::printf("design infeasible; nothing to sweep\n");
    return 1;
  }
  std::printf("design: P_sys %.0f Pa, W_pump %.4f W, T_max %.2f K, "
              "dT %.2f K\n\n",
              design.eval.p_sys, design.eval.w_pump, design.eval.at_p.t_max,
              design.eval.at_p.delta_t);

  SweepOptions options;
  options.scenarios = fast ? 24 : 96;
  options.seed = 0x5eedfau;
  options.search.rel_precision = 1e-2;
  options.search.max_probes = 40;

  TextTable table({"width", "scenarios", "seconds", "P(T>T*)", "P(dT>dT*)",
                   "recovered", "unrecov", "stats"});
  SweepReport serial;
  bool all_agree = true;
  for (const std::size_t threads : {std::size_t{1}, wide}) {
    set_global_pool_threads(threads);
    const instrument::Snapshot before = instrument::snapshot();
    const SweepReport report = run_sweep(bench.problem, design.network,
                                         bench.constraints,
                                         design.eval.p_sys, options);
    benchutil::PerfRecord record;
    record.bench = "bench_reliability";
    record.config = strfmt("sweep_n%d", options.scenarios);
    record.threads = threads;
    record.seconds = report.seconds;
    record.metrics = report_metrics(report);
    record.counters = instrument::delta(before, instrument::snapshot());
    benchutil::append_perf_record(record, "BENCH_reliability.json");

    const bool agree = threads == 1 || reports_agree(serial, report);
    all_agree = all_agree && agree;
    if (threads == 1) serial = report;
    table.add_row({strfmt("%zu", threads), strfmt("%d", options.scenarios),
                   cell(report.seconds, 3), cell(report.p_exceed_t_max, 3),
                   cell(report.p_exceed_delta_t, 3),
                   strfmt("%zu", report.recovered),
                   strfmt("%zu", report.unrecoverable),
                   threads == 1 ? "reference" : (agree ? "match" : "MISMATCH")});
  }
  set_global_pool_threads(0);

  std::printf("%s\n", table.str().c_str());
  std::printf("hardware threads %zu; sweep statistics across widths: %s "
              "(bit-identical required)\n",
              hw, all_agree ? "PASS" : "FAIL");
  return all_agree ? 0 : 1;
}
