// E10 — ablations on the design choices DESIGN.md calls out:
//  (a) branch-type mix of the tree structure (Fig. 8(b)),
//  (b) global flow direction (Fig. 8(a)) on a non-uniform power map,
//  (c) branch positions (b1, b2): upstream-vs-downstream channel density,
//  (d) inlet/outlet (edge) conductance factor sensitivity.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "geom/benchmarks.hpp"
#include "network/design_rules.hpp"
#include "network/generators.hpp"
#include "opt/evaluator.hpp"
#include "opt/sa.hpp"

namespace {

using namespace lcn;

TreeLayout layout_of_type(const Grid2D& grid, BranchType type, int b1,
                          int b2) {
  // Tile the grid with trees of a single type (remainder filled by the
  // standard fit).
  TreeLayout layout;
  const int channel_rows = (grid.rows() + 1) / 2;
  int remaining = channel_rows;
  int y0 = 0;
  while (remaining >= branch_channel_rows(type) + 2 ||
         remaining == branch_channel_rows(type)) {
    TreeSpec spec{type, y0, b1, b2};
    legalize_tree_spec(grid, spec);
    layout.trees.push_back(spec);
    y0 += branch_row_span(type) + 2;
    remaining -= branch_channel_rows(type);
  }
  for (BranchType fill : fit_branch_types(remaining > 0 ? remaining : 2)) {
    if (remaining <= 0) break;
    TreeSpec spec{fill, y0, b1, b2};
    legalize_tree_spec(grid, spec);
    layout.trees.push_back(spec);
    y0 += branch_row_span(fill) + 2;
    remaining -= branch_channel_rows(fill);
  }
  return layout;
}

}  // namespace

int main() {
  using namespace lcn;
  benchutil::banner("Ablations — branch types, flow directions, branch "
                    "positions, edge factor",
                    "paper §4.3/§4.4 design choices");

  const BenchmarkCase bench = make_iccad_case(1);
  const Grid2D& grid = bench.problem.grid;
  const SimConfig sim{ThermalModelKind::k2RM, 4};

  // (a) Branch-type mix at identical (b1, b2).
  {
    std::printf("\n(a) branch-type mix (Problem-1 evaluation):\n");
    TextTable table({"mix", "feasible", "P_sys (kPa)", "dT (K)",
                     "W_pump (mW)"});
    struct Mix {
      const char* name;
      TreeLayout layout;
    };
    const std::vector<Mix> mixes = {
        {"all 1->2 (double)", layout_of_type(grid, BranchType::kDouble, 30, 64)},
        {"all 1->2->3 (triple)",
         layout_of_type(grid, BranchType::kTriple, 30, 64)},
        {"all 1->2->4 (quad)", layout_of_type(grid, BranchType::kQuad, 30, 64)},
        {"fitted mix (default)", make_uniform_layout(grid, 30, 64)},
    };
    for (const Mix& mix : mixes) {
      const CoolingNetwork net = make_tree_network(grid, mix.layout);
      SystemEvaluator eval(bench.problem, net, sim);
      const EvalResult r = evaluate_p1(eval, bench.constraints);
      table.add_row({mix.name, r.feasible ? "yes" : "no",
                     r.feasible ? cell(r.p_sys / 1e3, 2) : cell_na(),
                     r.feasible ? cell(r.at_p.delta_t, 2) : cell_na(),
                     r.feasible ? cell(r.w_pump * 1e3, 3) : cell_na()});
    }
    std::printf("%s", table.str().c_str());
  }

  // (b) Global flow direction: the D4 images score differently on a
  // non-uniform power map.
  {
    std::printf("\n(b) global flow direction (uniform tree, Problem 1):\n");
    TextTable table({"direction (D4 code)", "feasible", "W_pump (mW)"});
    TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower, 1);
    const TreeLayout layout = make_uniform_layout(grid, 30, 64);
    double best = 1e300;
    double worst = 0.0;
    for (int dir = 0; dir < D4Transform::kCount; ++dir) {
      const EvalResult r = opt.evaluate_network(opt.realize(layout, dir), sim);
      table.add_row({cell_int(dir), r.feasible ? "yes" : "no",
                     r.feasible ? cell(r.w_pump * 1e3, 3) : cell_na()});
      if (r.feasible) {
        best = std::min(best, r.w_pump);
        worst = std::max(worst, r.w_pump);
      }
    }
    std::printf("%s", table.str().c_str());
    if (worst > 0.0) {
      std::printf("direction sweep spread: worst/best = %.2fx\n",
                  worst / best);
    }
  }

  // (c) Branch positions: later branching (larger b1, b2) concentrates wall
  // area downstream, compensating the coolant temperature rise (§3 factor 3
  // vs factor 1).
  {
    std::printf("\n(c) branch positions (uniform (b1, b2), fixed P = 10 kPa):\n");
    TextTable table({"b1", "b2", "dT (K)", "Tmax (K)"});
    for (const auto& [b1, b2] :
         std::vector<std::pair<int, int>>{{10, 20}, {20, 50}, {30, 64},
                                          {40, 80}, {60, 90}}) {
      const CoolingNetwork net =
          make_tree_network(grid, make_uniform_layout(grid, b1, b2));
      SystemEvaluator eval(bench.problem, net, sim);
      const ThermalProbe p = eval.probe(10000.0);
      table.add_row({cell_int(b1), cell_int(b2), cell(p.delta_t, 2),
                     cell(p.t_max, 2)});
    }
    std::printf("%s", table.str().c_str());
  }

  // (e) Prior-work-style baseline: straight channels with density
  // modulation (GreenCool [10] / channel clustering [12] analogue) — fewer
  // channels where the floorplan is cool. Compared under the Problem-1
  // evaluation against the full straight array and the tree network.
  {
    std::printf("\n(e) density-modulated straight channels (Problem 1):\n");
    TextTable table({"channels kept", "feasible", "P_sys (kPa)",
                     "W_pump (mW)"});
    for (int keep : {51, 40, 30, 20}) {
      const std::vector<bool> profile =
          density_profile_from_power(bench.problem.source_power[0], keep);
      const CoolingNetwork net = make_modulated_straight(grid, profile);
      SystemEvaluator eval(bench.problem, net, sim);
      const EvalResult r = evaluate_p1(eval, bench.constraints);
      table.add_row({cell_int(keep), r.feasible ? "yes" : "no",
                     r.feasible ? cell(r.p_sys / 1e3, 2) : cell_na(),
                     r.feasible ? cell(r.w_pump * 1e3, 3) : cell_na()});
    }
    std::printf("%s", table.str().c_str());
    std::printf("expected: dropping cool-region channels can cut W_pump "
                "below the full straight array, but the tree network (a) "
                "still wins.\n");
  }

  // (d) Edge (inlet/outlet) conductance factor: affects R_sys and thus the
  // W_pump scale, not the qualitative comparisons.
  {
    std::printf("\n(d) edge conductance factor sensitivity (straight "
                "channels):\n");
    TextTable table({"factor", "R_sys (Pa.s/m^3)", "W_pump @10kPa (mW)"});
    for (double factor : {0.25, 0.5, 1.0, 2.0}) {
      CoolingProblem problem = bench.problem;
      problem.flow_options.edge_conductance_factor = factor;
      SystemEvaluator eval(problem, make_straight_channels(grid), sim);
      table.add_row({cell(factor, 2), cell_sci(eval.system_resistance(), 3),
                     cell(eval.pumping_power(10000.0) * 1e3, 3)});
    }
    std::printf("%s", table.str().c_str());
  }
  return 0;
}
