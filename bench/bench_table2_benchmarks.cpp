// E1 — Table 2: benchmark statistics of the (synthetic) ICCAD 2015 cases.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "geom/benchmarks.hpp"

int main() {
  using namespace lcn;
  benchutil::banner("Table 2 — ICCAD 2015 benchmark statistics (synthetic)",
                    "paper §6 Table 2; see DESIGN.md §4 substitution 1");

  TextTable table({"#", "Die Num", "h_c (um)", "Die Power (W)", "dT* (K)",
                   "Tmax* (K)", "Other Constraint", "Peak/Mean Density"});
  for (const BenchmarkCase& bench : all_iccad_cases()) {
    std::string other = "-";
    if (!bench.forbidden.empty()) {
      other = strfmt("no channel in rows %d-%d cols %d-%d",
                     bench.forbidden.row0, bench.forbidden.row1,
                     bench.forbidden.col0, bench.forbidden.col1);
    }
    if (bench.matched_layers) other = "matched inlets/outlets across layers";

    double peak_density = 0.0;
    double mean_density = 0.0;
    for (const PowerMap& map : bench.problem.source_power) {
      peak_density = std::max(peak_density, map.max_cell());
      mean_density += map.total() / map.grid().cell_count();
    }
    mean_density /= bench.problem.source_power.size();

    table.add_row({cell_int(bench.id), cell_int(bench.dies()),
                   cell(bench.channel_height() * 1e6, 0),
                   cell(bench.problem.total_power(), 3),
                   cell(bench.constraints.delta_t_max, 0),
                   cell(bench.constraints.t_max, 2), other,
                   cell(peak_density / mean_density, 2)});
  }
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nPaper row check (die num / h_c / power / dT* / Tmax*):\n"
      "  1: 2/200/42.038/15/358.15   2: 2/400/37.038/10/358.15\n"
      "  3: 2/400/43.038/15/358.15   4: 3/200/43.438/10/358.15\n"
      "  5: 2/400/148.174/10/338.15\n");
  return 0;
}
