// E9 — Fig. 10: temperature maps of the bottom source layer of case 1 for
// the Problem-1 design (hotter overall, larger gradient, tiny W_pump) vs the
// Problem-2 design (flatter, higher W_pump). Rendered as ASCII heatmaps and
// CSV matrices.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench_util.hpp"
#include "opt/sa.hpp"
#include "thermal/image.hpp"
#include "thermal/temp_map.hpp"

namespace {

using namespace lcn;

void report(const char* title, const BenchmarkCase& bench,
            const DesignOutcome& outcome) {
  std::printf("\n--- %s ---\n", title);
  if (!outcome.feasible) {
    std::printf("infeasible design; no map\n");
    return;
  }
  std::printf("P_sys = %.2f kPa, W_pump = %.3f mW, Tmax = %.2f K, dT = %.2f K\n",
              outcome.eval.p_sys / 1e3, outcome.eval.w_pump * 1e3,
              outcome.eval.at_p.t_max, outcome.eval.at_p.delta_t);
  SystemEvaluator eval(bench.problem, outcome.network,
                       SimConfig{ThermalModelKind::k4RM, 1});
  const ThermalField field = eval.field(outcome.eval.p_sys);
  std::printf("%s", ascii_heatmap(field, 0, 64).c_str());

  // Fig. 10's CSV side output is the raw temperature matrix.
  if (!env_flag("LCN_NO_CSV")) {
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    if (!ec) {
      const std::string tag =
          (title[0] == 'P' && title[8] == '1') ? "p1" : "p2";
      const std::string csv_path =
          "bench_results/fig10_" + tag + "_bottom_layer.csv";
      std::ofstream out(csv_path);
      out << temperature_csv(field, 0);
      const std::string pgm_path =
          "bench_results/fig10_" + tag + "_bottom_layer.pgm";
      std::ofstream img(pgm_path, std::ios::binary);
      img << temperature_pgm(field, 0, 4);
      std::printf("  [csv: %s, pgm: %s]\n", csv_path.c_str(),
                  pgm_path.c_str());
    }
  }
}

}  // namespace

int main() {
  using namespace lcn;
  benchutil::banner("Fig. 10 — bottom source-layer temperature maps (case 1)",
                    "paper §6 Fig. 10");
  const double scale = benchutil::sa_scale(0.15);

  const BenchmarkCase bench = make_iccad_case(1);

  TreeTopologyOptimizer p1(bench, DesignObjective::kPumpingPower, 0xf16);
  const DesignOutcome out1 = p1.run(default_p1_stages(scale));
  report("Problem 1 design (min W_pump)", bench, out1);

  BenchmarkCase bench2 = make_iccad_case(1);
  bench2.constraints.w_pump_max = problem2_pump_budget(bench2);
  TreeTopologyOptimizer p2(bench2, DesignObjective::kThermalGradient, 0xf17);
  const DesignOutcome out2 = p2.run(default_p2_stages(scale));
  report("Problem 2 design (min dT)", bench2, out2);

  if (out1.feasible && out2.feasible) {
    std::printf(
        "\nexpected shape (paper): the Problem-1 map is hotter overall with a\n"
        "larger gradient (smaller W_pump); the Problem-2 map is flatter at a\n"
        "higher W_pump. measured: P1 dT=%.2f K @ %.3f mW vs P2 dT=%.2f K @ "
        "%.3f mW\n",
        out1.eval.at_p.delta_t, out1.eval.w_pump * 1e3,
        out2.eval.at_p.delta_t, out2.eval.w_pump * 1e3);
  }
  return 0;
}
