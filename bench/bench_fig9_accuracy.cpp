// E5/E6 — Fig. 9: accuracy and speed-up of 2RM relative to 4RM across
// thermal-cell sizes and network styles. The paper sweeps 5 benchmarks x 40
// networks x 6 cell sizes x 13 pressures (15600 simulations on an 80-core
// server); the default here is a scaled sweep with the same axes
// (LCN_CASES / LCN_FIG9_NETS / LCN_FIG9_PRESSURES widen it).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"

namespace {

using namespace lcn;

struct Sample {
  std::string style;  // "straight", "tree", "manual"
  CoolingNetwork net;
};

std::vector<Sample> sample_networks(const Grid2D& grid, int tree_count,
                                    Rng& rng) {
  std::vector<Sample> out;
  out.push_back({"straight", make_straight_channels(grid)});
  out.push_back(
      {"straight", make_straight_channels(grid).transformed(D4Transform(1))});
  out.push_back({"manual", make_serpentine(grid)});
  out.push_back({"manual", make_comb(grid)});
  out.push_back({"tree", make_tree_network(
                             grid, make_uniform_layout(grid, 30, 64))});
  for (int i = 1; i < tree_count; ++i) {
    out.push_back(
        {"tree", make_tree_network(grid, make_random_layout(grid, rng))});
  }
  return out;
}

/// Average relative error of 2RM source-layer nodes vs the block-averaged
/// 4RM reference (the paper's Fig. 9(a) metric).
double average_relative_error(const ThermalField& f4, const ThermalField& f2,
                              int m) {
  double err_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t layer = 0; layer < f4.source_maps.size(); ++layer) {
    for (int br = 0; br < f2.map_rows; ++br) {
      for (int bc = 0; bc < f2.map_cols; ++bc) {
        double sum = 0.0;
        int cells = 0;
        for (int r = br * m; r < std::min((br + 1) * m, f4.map_rows); ++r) {
          for (int c = bc * m; c < std::min((bc + 1) * m, f4.map_cols); ++c) {
            sum += f4.source_maps[layer][static_cast<std::size_t>(r) *
                                             f4.map_cols + c];
            ++cells;
          }
        }
        const double t4 = sum / cells;
        const double t2 =
            f2.source_maps[layer][static_cast<std::size_t>(br) * f2.map_cols +
                                  bc];
        err_sum += std::abs(t2 - t4) / t4;
        ++count;
      }
    }
  }
  return err_sum / static_cast<double>(count);
}

}  // namespace

int main() {
  using namespace lcn;
  benchutil::banner("Fig. 9 — 2RM accuracy (a) and speed-up (b) vs 4RM",
                    "paper §6, Fig. 9");

  const bool fast = env_flag("LCN_FAST");
  const std::vector<int> ids = benchutil::case_ids(fast ? "1" : "1,2");
  const int tree_count =
      static_cast<int>(env_int("LCN_FIG9_NETS", fast ? 2 : 4));
  const int pressure_count =
      static_cast<int>(env_int("LCN_FIG9_PRESSURES", fast ? 2 : 3));
  const std::vector<int> cell_sizes = {2, 4, 6, 8, 10};

  std::vector<double> pressures;
  for (int i = 0; i < pressure_count; ++i) {
    pressures.push_back(4000.0 * std::pow(3.0, i));
  }

  // err[style][m] -> (sum, count); time accumulators for the speed-up plot.
  std::map<std::string, std::map<int, std::pair<double, int>>> errors;
  std::map<int, double> time_2rm;
  std::map<int, int> runs_2rm;
  double time_4rm = 0.0;
  int runs_4rm = 0;

  CsvWriter csv({"case", "style", "cell_size_um", "p_sys_pa", "avg_rel_err"});
  Rng rng(0xf19a);

  for (int id : ids) {
    const BenchmarkCase bench = make_iccad_case(id);
    const auto samples =
        sample_networks(bench.problem.grid, tree_count, rng);
    std::printf("case %d: %zu networks x %zu pressures x %zu cell sizes\n",
                id, samples.size(), pressures.size(), cell_sizes.size());
    for (const Sample& sample : samples) {
      const std::vector<CoolingNetwork> nets(
          static_cast<std::size_t>(bench.problem.stack.channel_count()),
          sample.net);
      const Thermal4RM ref(bench.problem, nets);
      std::vector<std::unique_ptr<Thermal2RM>> coarse;
      for (int m : cell_sizes) {
        coarse.push_back(
            std::make_unique<Thermal2RM>(bench.problem, nets, m));
      }
      for (double p : pressures) {
        WallTimer t4;
        const ThermalField f4 = ref.simulate(p);
        time_4rm += t4.seconds();
        ++runs_4rm;
        for (std::size_t k = 0; k < cell_sizes.size(); ++k) {
          const int m = cell_sizes[k];
          WallTimer t2;
          const ThermalField f2 = coarse[k]->simulate(p);
          time_2rm[m] += t2.seconds();
          ++runs_2rm[m];
          const double err = average_relative_error(f4, f2, m);
          auto& bucket = errors[sample.style][m];
          bucket.first += err;
          ++bucket.second;
          csv.add_row({cell_int(id), sample.style,
                       cell_int(m * 100), cell(p, 0), cell_sci(err, 4)});
        }
      }
    }
  }

  std::printf("\nFig. 9(a) — average relative error vs thermal cell size:\n");
  TextTable acc({"cell size (um)", "straight", "tree", "manual", "all"});
  for (int m : cell_sizes) {
    std::vector<std::string> row{cell_int(m * 100)};
    double all_sum = 0.0;
    int all_count = 0;
    for (const char* style : {"straight", "tree", "manual"}) {
      const auto& bucket = errors[style][m];
      row.push_back(bucket.second > 0
                        ? strfmt("%.3f%%", 100.0 * bucket.first / bucket.second)
                        : "-");
      all_sum += bucket.first;
      all_count += bucket.second;
    }
    row.push_back(strfmt("%.3f%%", 100.0 * all_sum / all_count));
    acc.add_row(row);
  }
  std::printf("%s", acc.str().c_str());
  std::printf("expected shape: error grows with cell size; straight channels"
              " smallest.\n");

  std::printf("\nFig. 9(b) — 2RM speed-up over 4RM:\n");
  TextTable speed({"cell size (um)", "4RM (s)", "2RM (s)", "speed-up"});
  const double t4_avg = time_4rm / runs_4rm;
  for (int m : cell_sizes) {
    const double t2_avg = time_2rm[m] / runs_2rm[m];
    speed.add_row({cell_int(m * 100), cell(t4_avg, 3), cell(t2_avg, 4),
                   strfmt("%.0fx", t4_avg / t2_avg)});
  }
  std::printf("%s", speed.str().c_str());
  std::printf("expected shape: speed-up > m^2 for small cells, saturating as"
              " overhead dominates.\n");
  benchutil::maybe_save_csv(csv, "fig9_accuracy.csv");
  return 0;
}
