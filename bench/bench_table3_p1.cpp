// E7 — Table 3: pumping-power minimization (Problem 1). For every ICCAD
// case the straight-channel baseline (best global direction) is compared to
// the SA-optimized tree-like network, both signed off with the 4RM model.
// The contest first place's manual designs were never published, so that
// middle row of the paper's table cannot be regenerated (DESIGN.md §4).
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "opt/sa.hpp"

int main() {
  using namespace lcn;
  benchutil::banner("Table 3 — pumping power minimization (Problem 1)",
                    "paper §6 Table 3");
  const double scale = benchutil::sa_scale();
  const std::vector<int> ids = benchutil::case_ids("1,2,3,4,5");
  std::printf("SA scale %.2f (paper schedule ~1.0; set LCN_SA_SCALE)\n",
              scale);
  std::printf("stage schedule (paper Table 1):\n%s\n",
              format_stages(default_p1_stages(scale)).c_str());

  TextTable table({"case", "design", "P_sys (kPa)", "Tmax (K)", "dT (K)",
                   "W_pump (mW)", "W saving"});
  CsvWriter csv({"case", "design", "p_sys_pa", "t_max_k", "delta_t_k",
                 "w_pump_w", "seconds"});

  for (int id : ids) {
    const BenchmarkCase bench = make_iccad_case(id);

    const BaselineOutcome base =
        best_straight_baseline(bench, DesignObjective::kPumpingPower);
    if (base.feasible) {
      table.add_row({cell_int(id), "straight (baseline)",
                     cell(base.eval.p_sys / 1e3, 2),
                     cell(base.eval.at_p.t_max, 1),
                     cell(base.eval.at_p.delta_t, 2),
                     cell(base.eval.w_pump * 1e3, 3), "-"});
    } else {
      table.add_row({cell_int(id), "straight (baseline)", cell_na(),
                     cell_na(), cell_na(), cell_na(),
                     "infeasible"});
    }
    csv.add_row({cell_int(id), "straight",
                 base.feasible ? cell(base.eval.p_sys, 2) : cell_na(),
                 base.feasible ? cell(base.eval.at_p.t_max, 3) : cell_na(),
                 base.feasible ? cell(base.eval.at_p.delta_t, 3) : cell_na(),
                 base.feasible ? cell_sci(base.eval.w_pump, 4) : cell_na(),
                 "0"});

    table.add_row({cell_int(id), "manual (contest 1st)", cell_na(), cell_na(),
                   cell_na(), cell_na(), "unpublished"});

    TreeTopologyOptimizer opt(bench, DesignObjective::kPumpingPower,
                              0xdac17u + static_cast<std::uint64_t>(id));
    const instrument::Snapshot before = instrument::snapshot();
    const DesignOutcome ours = opt.run(default_p1_stages(scale));
    benchutil::PerfRecord perf;
    perf.bench = "bench_table3_p1";
    perf.config = strfmt("case%d/sa", id);
    perf.threads = global_pool_threads();
    perf.seconds = ours.seconds;
    perf.metrics = {{"feasible", ours.feasible ? 1.0 : 0.0},
                    {"p_sys_pa", ours.eval.p_sys},
                    {"t_max_k", ours.eval.at_p.t_max},
                    {"delta_t_k", ours.eval.at_p.delta_t},
                    {"w_pump_w", ours.eval.w_pump},
                    {"evaluations", static_cast<double>(ours.evaluations)}};
    perf.counters = instrument::delta(before, instrument::snapshot());
    benchutil::append_perf_record(perf);
    std::string saving = "-";
    if (ours.feasible && base.feasible) {
      saving = strfmt("%.1f%%", 100.0 * (1.0 - ours.eval.w_pump /
                                                   base.eval.w_pump));
    }
    if (ours.feasible) {
      table.add_row({cell_int(id), "tree-like (ours)",
                     cell(ours.eval.p_sys / 1e3, 2),
                     cell(ours.eval.at_p.t_max, 1),
                     cell(ours.eval.at_p.delta_t, 2),
                     cell(ours.eval.w_pump * 1e3, 3), saving});
    } else {
      table.add_row({cell_int(id), "tree-like (ours)", cell_na(), cell_na(),
                     cell_na(), cell_na(), "infeasible"});
    }
    table.add_rule();
    csv.add_row({cell_int(id), "tree",
                 ours.feasible ? cell(ours.eval.p_sys, 2) : cell_na(),
                 ours.feasible ? cell(ours.eval.at_p.t_max, 3) : cell_na(),
                 ours.feasible ? cell(ours.eval.at_p.delta_t, 3) : cell_na(),
                 ours.feasible ? cell_sci(ours.eval.w_pump, 4) : cell_na(),
                 cell(ours.seconds, 1)});
    std::printf("case %d done: baseline %s, ours %s (%.0f s, %zu candidate "
                "evaluations)\n",
                id, base.feasible ? "feasible" : "infeasible",
                ours.feasible ? "feasible" : "infeasible", ours.seconds,
                ours.evaluations);
  }

  std::printf("\n%s", table.str().c_str());
  std::printf(
      "\nexpected shape (paper): tree-like networks save a large fraction of\n"
      "pumping power at identical constraints (paper: up to 84.03%%); the\n"
      "hottest case is the hardest for straight channels.\n");
  benchutil::maybe_save_csv(csv, "table3_p1.csv");
  return 0;
}
