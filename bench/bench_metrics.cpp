// bench_metrics: hot-path overhead of the metrics registry (DESIGN.md §S24).
//
// The registry's contract is that an *enabled* histogram observation stays
// within a small constant factor of the bare relaxed counter add the hot
// paths already pay (common/instrument). This bench measures both on one
// thread — N instrument::add_* calls vs N metrics::observe() calls over a
// precomputed spread of values — plus the full ScopedLatency cost (two
// steady_clock reads) for reference, and self-checks the observe/add ratio.
//
// Output: bench_results/BENCH_metrics.json (one record per phase). Exits
// nonzero when the ratio exceeds the agreed bound (generous: timing noise on
// a loaded CI box must not fail the suite spuriously).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace {

using namespace lcn;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The enabled-observation cost must stay within this factor of a bare
/// counter add. The observation does a 38-bound lower_bound plus two relaxed
/// adds, so single digits are expected; the bound is generous because CI
/// boxes are noisy and a *regression* (a lock, an allocation) lands far
/// beyond it.
constexpr double kMaxObserveOverAdd = 40.0;

}  // namespace

int main() {
  benchutil::banner(
      "bench_metrics: registry hot-path overhead (observe vs counter add)",
      "DESIGN.md S24 overhead contract");

  const bool fast = env_flag("LCN_FAST");
  const std::size_t iters = fast ? 2'000'000 : 20'000'000;
  const std::size_t pool = global_pool_threads();
  metrics::set_level(metrics::kFine);

  // Precomputed observation values spanning the bucket range, so the
  // lower_bound cost reflects real (varied) latencies rather than one
  // branch-predicted bucket.
  std::vector<double> values(1024);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = 1e-6 * static_cast<double>(1 + (i * 37) % 4000);
  }

  // Phase 1: bare relaxed counter add (the existing instrument idiom).
  const auto t_add = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    instrument::add_pressure_probe();
  }
  const double add_seconds = seconds_since(t_add);

  // Phase 2: enabled histogram observation with a precomputed value.
  const auto t_observe = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    metrics::observe(metrics::Hist::cache_lookup_seconds,
                     values[i & (values.size() - 1)]);
  }
  const double observe_seconds = seconds_since(t_observe);

  // Phase 3: full ScopedLatency — adds two steady_clock reads, the cost a
  // coarse site actually pays when metrics are on.
  const auto t_scoped = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const metrics::ScopedLatency latency(metrics::Hist::cache_lookup_seconds,
                                         metrics::kFine);
  }
  const double scoped_seconds = seconds_since(t_scoped);

  // Phase 4: disabled site — the enabled() check alone (level 0).
  metrics::set_level(0);
  const auto t_disabled = Clock::now();
  for (std::size_t i = 0; i < iters; ++i) {
    const metrics::ScopedLatency latency(metrics::Hist::cache_lookup_seconds,
                                         metrics::kFine);
  }
  const double disabled_seconds = seconds_since(t_disabled);
  metrics::set_level(metrics::kFine);

  const double per = 1e9 / static_cast<double>(iters);
  const double ratio =
      add_seconds > 0.0 ? observe_seconds / add_seconds : 0.0;

  TextTable table({"phase", "total s", "ns/op"});
  table.add_row({"counter add", strfmt("%.3f", add_seconds),
                 strfmt("%.2f", add_seconds * per)});
  table.add_row({"observe", strfmt("%.3f", observe_seconds),
                 strfmt("%.2f", observe_seconds * per)});
  table.add_row({"scoped latency", strfmt("%.3f", scoped_seconds),
                 strfmt("%.2f", scoped_seconds * per)});
  table.add_row({"disabled site", strfmt("%.3f", disabled_seconds),
                 strfmt("%.2f", disabled_seconds * per)});
  std::printf("%s", table.str().c_str());
  std::printf("observe/add ratio: %.2fx (bound %.0fx)\n", ratio,
              kMaxObserveOverAdd);

  // Sanity: the observations actually landed (count and exact quantile math
  // are exercised on real recorded data).
  const metrics::HistogramSnapshot hist =
      metrics::global_shard()
          .histograms[static_cast<std::size_t>(
              metrics::Hist::cache_lookup_seconds)]
          .snapshot();
  if (hist.count < iters) {
    std::printf("FAIL: histogram recorded %llu of %zu observations\n",
                static_cast<unsigned long long>(hist.count), iters);
    return 1;
  }

  benchutil::PerfRecord record;
  record.bench = "bench_metrics";
  record.config = "observe_vs_add";
  record.threads = pool;
  record.seconds = add_seconds + observe_seconds + scoped_seconds;
  record.metrics = {{"iters", static_cast<double>(iters)},
                    {"add_ns", add_seconds * per},
                    {"observe_ns", observe_seconds * per},
                    {"scoped_ns", scoped_seconds * per},
                    {"disabled_ns", disabled_seconds * per},
                    {"observe_over_add", ratio},
                    {"p50_s", hist.quantile(0.50)},
                    {"p99_s", hist.quantile(0.99)}};
  benchutil::append_perf_record(record, "BENCH_metrics.json");

  if (ratio > kMaxObserveOverAdd) {
    std::printf(
        "FAIL: enabled observation is %.1fx a bare counter add "
        "(bound %.0fx) — the hot-path overhead contract regressed\n",
        ratio, kMaxObserveOverAdd);
    return 1;
  }
  std::printf("OK: overhead contract holds\n");
  return 0;
}
