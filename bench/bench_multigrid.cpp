// S20 — next-gen solver core: multigrid vs ILU(0) preconditioning and
// fp64 vs mixed-precision Krylov on 4RM steady solves, swept over grid
// sizes from the Table-2 scale (101×101 cells) up to ≥4× that node count
// (202×202). Per (grid, config) it reports Krylov iterations and wall
// time; a SELL-C-σ vs CSR SpMV microbenchmark rides along. Every
// measurement is appended to bench_results/BENCH_multigrid.json. At the
// largest grid the bench self-checks the §S20 claim — multigrid cuts
// Krylov iterations by at least 3× vs ILU(0) — and exits nonzero if the
// win evaporates.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "network/generators.hpp"
#include "sparse/sell.hpp"
#include "thermal/model_4rm.hpp"

namespace {

using namespace lcn;

CoolingProblem make_problem(int g) {
  CoolingProblem problem;
  problem.grid = Grid2D(g, g, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  // Keep the areal power density at the Table-2 scale as the die grows.
  const double per_die = 25.0 * (static_cast<double>(g) / 101.0) *
                         (static_cast<double>(g) / 101.0);
  for (int die = 0; die < 2; ++die) {
    problem.source_power.emplace_back(problem.grid, per_die);
  }
  return problem;
}

struct Run {
  double seconds = 0.0;
  std::uint64_t krylov_iters = 0;
  instrument::Snapshot counters;
};

Run timed_solve(const AssembledThermal& system, const SteadySolverConfig& cfg) {
  Run run;
  SteadyWorkspace ws;  // fresh per config: setup cost is part of the price
  const instrument::Snapshot before = instrument::snapshot();
  const WallTimer timer;
  const ThermalField field = solve_steady(system, 1e-9, nullptr, &ws, &cfg);
  run.seconds = timer.seconds();
  run.counters = instrument::delta(before, instrument::snapshot());
  run.krylov_iters = run.counters.bicgstab_iterations +
                     run.counters.gmres_iterations +
                     run.counters.fp32_inner_iters;
  (void)field;
  return run;
}

void report(int g, std::size_t nodes, const char* config, const Run& run,
            double speedup_vs_ilu = 0.0) {
  std::printf("  %-12s %8llu iters  %8.3f s\n", config,
              static_cast<unsigned long long>(run.krylov_iters), run.seconds);
  benchutil::PerfRecord record;
  record.bench = "bench_multigrid";
  record.config = strfmt("g%d/%s", g, config);
  record.threads = global_pool_threads();
  record.seconds = run.seconds;
  record.metrics.emplace_back("nodes", static_cast<double>(nodes));
  record.metrics.emplace_back("krylov_iters",
                              static_cast<double>(run.krylov_iters));
  if (speedup_vs_ilu > 0.0) {
    record.metrics.emplace_back("time_speedup_vs_ilu0", speedup_vs_ilu);
  }
  record.counters = run.counters;
  benchutil::append_perf_record(record, "BENCH_multigrid.json");
}

void spmv_microbench(int g, const sparse::CsrMatrix& a) {
  const int reps = 50;
  sparse::Vector x(a.cols());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 + 1e-3 * static_cast<double>(i % 97);
  }
  sparse::Vector y;
  a.multiply(x, y);  // warm
  const WallTimer csr_timer;
  for (int r = 0; r < reps; ++r) a.multiply(x, y);
  const double csr_s = csr_timer.seconds();

  const sparse::SellMatrixD sell(a);
  sell.multiply(x, y);  // warm
  const WallTimer sell_timer;
  for (int r = 0; r < reps; ++r) sell.multiply(x, y);
  const double sell_s = sell_timer.seconds();

  const double pad = static_cast<double>(sell.padded_slots()) /
                     static_cast<double>(sell.nnz());
  std::printf("  spmv x%d      csr %.4f s   sell %.4f s   (%.2fx, padding "
              "%.3f)\n",
              reps, csr_s, sell_s, csr_s / sell_s, pad);
  benchutil::PerfRecord record;
  record.bench = "bench_multigrid";
  record.config = strfmt("g%d/spmv", g);
  record.threads = global_pool_threads();
  record.seconds = sell_s;
  record.metrics.emplace_back("csr_seconds", csr_s);
  record.metrics.emplace_back("sell_seconds", sell_s);
  record.metrics.emplace_back("sell_speedup", csr_s / sell_s);
  record.metrics.emplace_back("sell_padding_ratio", pad);
  benchutil::append_perf_record(record, "BENCH_multigrid.json");
}

}  // namespace

int main() {
  benchutil::banner("Multigrid + mixed precision vs ILU(0) — 4RM steady solves",
                    "DESIGN.md §S20 (next-gen solver core)");
  const bool fast = env_flag("LCN_FAST");
  // Table-2 dies are 101×101 cells; the large point holds ≥4× that node
  // count. LCN_FAST shrinks the sweep for CI smoke runs.
  const std::vector<int> grids = fast ? std::vector<int>{51, 101}
                                      : std::vector<int>{101, 202};
  bool ok = true;

  for (int g : grids) {
    const CoolingProblem problem = make_problem(g);
    const std::vector<CoolingNetwork> nets(
        static_cast<std::size_t>(problem.stack.channel_count()),
        make_straight_channels(problem.grid));
    const Thermal4RM sim(problem, nets);
    const AssembledThermal system = sim.assemble(2000.0);
    const std::size_t nodes = system.matrix.rows();
    std::printf("\n%dx%d grid, 2 dies: %zu nodes, %zu nnz\n", g, g, nodes,
                system.matrix.nnz());

    SteadySolverConfig ilu_cfg;  // defaults: ILU(0), fp64
    const Run ilu = timed_solve(system, ilu_cfg);
    report(g, nodes, "ilu0-fp64", ilu);

    SteadySolverConfig mg_cfg;
    mg_cfg.precon = SteadySolverConfig::Precon::kMultigrid;
    const Run mg = timed_solve(system, mg_cfg);
    report(g, nodes, "mg-fp64", mg, ilu.seconds / mg.seconds);

    SteadySolverConfig mixed_cfg = mg_cfg;
    mixed_cfg.precision = sparse::Precision::kMixed;
    const Run mixed = timed_solve(system, mixed_cfg);
    report(g, nodes, "mg-mixed", mixed, ilu.seconds / mixed.seconds);

    std::printf("  mg-fp64 vs ilu0: %.1fx fewer iterations, %.2fx wall time\n",
                static_cast<double>(ilu.krylov_iters) /
                    static_cast<double>(std::max<std::uint64_t>(
                        mg.krylov_iters, 1)),
                ilu.seconds / mg.seconds);

    spmv_microbench(g, system.matrix);

    // §S20 self-check at the largest grid of the sweep.
    if (g == grids.back()) {
      if (mg.krylov_iters * 3 > ilu.krylov_iters) {
        std::printf("  !! expected >= 3x Krylov iteration reduction from "
                    "multigrid\n");
        ok = false;
      }
      if (!fast && mg.seconds >= ilu.seconds) {
        std::printf("  !! expected a wall-time win from multigrid\n");
        ok = false;
      }
    }
  }

  if (!ok) {
    std::printf("\nFAILED: see !! lines above\n");
    return 1;
  }
  std::printf("\nOK\n");
  return 0;
}
