// Shared helpers for the benchmark harness binaries.
//
// Every bench runs stand-alone with no arguments; workload scale is tuned
// with environment knobs so the suite finishes on a laptop-class machine:
//   LCN_SA_SCALE   multiplies SA iteration counts (default 0.25; the paper's
//                  80-core schedule corresponds to ~1.0)
//   LCN_CASES      comma-separated ICCAD case ids to run (default depends on
//                  the bench)
//   LCN_FAST       =1 shrinks every bench to a smoke run
//   LCN_NO_CSV     =1 suppresses CSV side outputs (default: written to
//                  ./bench_results/)
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/instrument.hpp"
#include "common/manifest.hpp"
#include "common/strings.hpp"

namespace lcn::benchutil {

inline double sa_scale(double fallback = 0.25) {
  if (env_flag("LCN_FAST")) return 0.08;
  return env_double("LCN_SA_SCALE", fallback);
}

inline std::vector<int> case_ids(const std::string& fallback) {
  const std::string raw = env_string("LCN_CASES", fallback);
  std::vector<int> ids;
  for (const std::string& field : split(raw, ',')) {
    const auto t = trim(field);
    if (t.empty()) continue;
    const int id = std::stoi(std::string(t));
    if (id >= 1 && id <= 5) ids.push_back(id);
  }
  return ids;
}

inline void maybe_save_csv(const CsvWriter& csv, const std::string& name) {
  if (env_flag("LCN_NO_CSV")) return;
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) return;
  try {
    csv.save("bench_results/" + name);
    std::printf("  [csv: bench_results/%s]\n", name.c_str());
  } catch (...) {
    // CSV side outputs are best-effort.
  }
}

/// One machine-readable perf measurement (README §Bench, DESIGN.md §S1):
/// a bench phase run at a given thread count, its wall time, the headline
/// metrics it produced, and the solver counters it consumed.
struct PerfRecord {
  std::string bench;   ///< binary name, e.g. "bench_table3_p1"
  std::string config;  ///< phase/workload label, e.g. "case1/serial"
  std::size_t threads = 1;
  double seconds = 0.0;
  /// Headline result values (t_max, delta_t, w_pump, speedup, ...).
  std::vector<std::pair<std::string, double>> metrics;
  /// Counter delta covering exactly this measurement.
  instrument::Snapshot counters;
};

/// Append one JSON line to bench_results/<filename> (JSON-lines: one
/// self-contained object per record, so repeated bench runs accumulate a
/// perf trajectory). Best-effort; suppressed by LCN_NO_CSV alongside CSVs.
inline void append_perf_record(const PerfRecord& record,
                               const std::string& filename =
                                   "BENCH_parallel.json") {
  if (env_flag("LCN_NO_CSV")) return;
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) return;
  const std::string path = "bench_results/" + filename;
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) return;
  std::string metrics;
  for (const auto& [name, value] : record.metrics) {
    metrics += strfmt("%s\"%s\": %.9g", metrics.empty() ? "" : ", ",
                      name.c_str(), value);
  }
  // The manifest pins the record to a build: git SHA ("unknown" when git is
  // unavailable), build type, thread config. Computed once per process.
  std::fprintf(out,
               "{\"bench\": \"%s\", \"config\": \"%s\", \"threads\": %zu, "
               "\"seconds\": %.6f, \"metrics\": {%s}, \"counters\": %s, "
               "\"manifest\": %s}\n",
               record.bench.c_str(), record.config.c_str(), record.threads,
               record.seconds, metrics.c_str(),
               record.counters.json().c_str(), run_manifest().json().c_str());
  std::fclose(out);
  std::printf("  [perf: %s %s/%s]\n", path.c_str(), record.bench.c_str(),
              record.config.c_str());
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace lcn::benchutil
