// Shared helpers for the benchmark harness binaries.
//
// Every bench runs stand-alone with no arguments; workload scale is tuned
// with environment knobs so the suite finishes on a laptop-class machine:
//   LCN_SA_SCALE   multiplies SA iteration counts (default 0.25; the paper's
//                  80-core schedule corresponds to ~1.0)
//   LCN_CASES      comma-separated ICCAD case ids to run (default depends on
//                  the bench)
//   LCN_FAST       =1 shrinks every bench to a smoke run
//   LCN_NO_CSV     =1 suppresses CSV side outputs (default: written to
//                  ./bench_results/)
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/env.hpp"
#include "common/strings.hpp"

namespace lcn::benchutil {

inline double sa_scale(double fallback = 0.25) {
  if (env_flag("LCN_FAST")) return 0.08;
  return env_double("LCN_SA_SCALE", fallback);
}

inline std::vector<int> case_ids(const std::string& fallback) {
  const std::string raw = env_string("LCN_CASES", fallback);
  std::vector<int> ids;
  for (const std::string& field : split(raw, ',')) {
    const auto t = trim(field);
    if (t.empty()) continue;
    const int id = std::stoi(std::string(t));
    if (id >= 1 && id <= 5) ids.push_back(id);
  }
  return ids;
}

inline void maybe_save_csv(const CsvWriter& csv, const std::string& name) {
  if (env_flag("LCN_NO_CSV")) return;
  std::error_code ec;
  std::filesystem::create_directories("bench_results", ec);
  if (ec) return;
  try {
    csv.save("bench_results/" + name);
    std::printf("  [csv: bench_results/%s]\n", name.c_str());
  } catch (...) {
    // CSV side outputs are best-effort.
  }
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace lcn::benchutil
