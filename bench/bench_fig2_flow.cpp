// E2 — Fig. 2(c): pressure and flow-rate distribution inside a small
// cooling network (darker cells = higher pressure, longer arrows = larger
// flow; rendered here as an ASCII pressure ramp plus flow statistics).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "flow/flow_solver.hpp"
#include "flow/flow_stats.hpp"
#include "network/design_rules.hpp"
#include "network/generators.hpp"

int main() {
  using namespace lcn;
  benchutil::banner("Fig. 2(c) — pressure & flow-rate distribution",
                    "paper §2.1, Fig. 2");

  const Grid2D grid(23, 23, 100e-6);
  const TreeLayout layout = make_uniform_layout(grid, 8, 14);
  const CoolingNetwork net = make_tree_network(grid, layout);
  require_clean(net);

  const ChannelGeometry channel{grid.pitch(), 200e-6};
  const CoolantProperties water;
  const double p_sys = 1000.0;
  const FlowSolution sol =
      FlowSolver(net, channel, water).solve(p_sys);

  std::printf("network: %zu liquid cells, %zu ports, P_sys = %.0f Pa\n",
              net.liquid_count(), net.ports().size(), p_sys);
  std::printf("Q_sys = %.4g m^3/s  R_sys = %.4g Pa.s/m^3  W_pump = %.4g W\n\n",
              sol.system_flow, sol.system_resistance(),
              sol.pumping_power(p_sys));

  // ASCII map: pressure ramp on liquid cells, TSVs as '.', solid blank.
  static const char kRamp[] = "0123456789";
  std::printf("pressure map (0 = outlet pressure, 9 = inlet pressure):\n");
  for (int r = 0; r < grid.rows(); ++r) {
    for (int c = 0; c < grid.cols(); ++c) {
      if (net.is_liquid(r, c)) {
        const double p =
            sol.pressure[static_cast<std::size_t>(
                sol.liquid_index[grid.index(r, c)])] /
            p_sys;
        const int level = std::clamp(static_cast<int>(p * 10.0), 0, 9);
        std::printf("%c", kRamp[level]);
      } else if (is_tsv_cell(r, c)) {
        std::printf(".");
      } else {
        std::printf(" ");
      }
    }
    std::printf("\n");
  }

  // Flow-rate distribution along a leaf row vs the trunk: the trunk carries
  // the full tree flow, the leaves a fraction each.
  const TreeSpec& tree = layout.trees.front();
  const int trunk_row = tree.y0 + 2;
  const double trunk_q =
      std::abs(sol.flow_toward(grid, trunk_row, 1, Side::kEast));
  std::printf("\ntrunk flow (row %d): %.4g m^3/s\n", trunk_row, trunk_q);
  double leaf_sum = 0.0;
  for (int leaf_row = tree.y0; leaf_row <= tree.y0 + 6; leaf_row += 2) {
    const double q = std::abs(
        sol.flow_toward(grid, leaf_row, grid.cols() - 2, Side::kEast));
    std::printf("leaf flow  (row %d): %.4g m^3/s (%.1f%% of trunk)\n",
                leaf_row, q, 100.0 * q / trunk_q);
    leaf_sum += q;
  }
  std::printf("leaf sum: %.4g m^3/s (conservation vs trunk: %.2f%%)\n",
              leaf_sum, 100.0 * leaf_sum / trunk_q);

  // Laminar-assumption diagnostics (Eq. 1 requires Re < ~2300).
  const FlowStats stats = compute_flow_stats(net, sol, channel, water);
  std::printf("\nflow diagnostics: v_max = %.3g m/s, Re_max = %.1f (%s), "
              "%zu stagnant cells\n",
              stats.max_velocity, stats.max_reynolds,
              stats.laminar() ? "laminar" : "TURBULENT", stats.stagnant_cells);
  return 0;
}
