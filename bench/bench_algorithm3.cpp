// Algorithm-3 efficiency study (paper §4.2: "Algorithm 3 is carefully
// designed to achieve accuracy and speed"): for frozen networks, compare
// the probes Algorithm 3 spends against a naive geometric sweep reaching
// the same pressure resolution, and confirm both find the same operating
// point. Every probe is one thermal simulation, so probe count is runtime.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/evaluator.hpp"

int main() {
  using namespace lcn;
  benchutil::banner("Algorithm 3 — pressure-search probe efficiency",
                    "paper §4.2, Algorithm 3");

  TextTable table({"case", "network", "alg3 P (kPa)", "alg3 probes",
                   "sweep P (kPa)", "sweep probes", "agreement"});

  for (int id : benchutil::case_ids("1,2")) {
    const BenchmarkCase bench = make_iccad_case(id);
    const Grid2D& grid = bench.problem.grid;
    struct Net {
      const char* name;
      CoolingNetwork net;
    };
    const std::vector<Net> nets = {
        {"straight", make_straight_channels(grid)},
        {"tree(30,64)",
         make_tree_network(grid, make_uniform_layout(grid, 30, 64))},
    };
    for (const Net& n : nets) {
      // Algorithm 3 with a probe counter.
      SystemEvaluator eval(bench.problem, n.net,
                           SimConfig{ThermalModelKind::k2RM, 4});
      int alg3_probes = 0;
      PressureSearchOptions options;
      options.rel_precision = 1e-2;
      const PressureSearchResult alg3 = minimize_pressure_for_target(
          [&](double p) {
            ++alg3_probes;
            return eval.delta_t(p);
          },
          bench.constraints.delta_t_max, options);

      // Naive sweep at the same 1% resolution from a decade below to a
      // decade above (what one would do without the structure of f).
      SystemEvaluator sweep_eval(bench.problem, n.net,
                                 SimConfig{ThermalModelKind::k2RM, 4});
      int sweep_probes = 0;
      double sweep_p = 0.0;
      for (double p = 500.0; p <= 5e5; p *= 1.01) {
        ++sweep_probes;
        const double dt = sweep_eval.delta_t(p);
        if (dt <= bench.constraints.delta_t_max) {
          sweep_p = p;
          break;
        }
      }

      const bool both = alg3.feasible && sweep_p > 0.0;
      table.add_row(
          {cell_int(id), n.name,
           alg3.feasible ? cell(alg3.p_sys / 1e3, 2) : cell_na(),
           cell_int(alg3_probes),
           sweep_p > 0.0 ? cell(sweep_p / 1e3, 2) : cell_na(),
           cell_int(sweep_probes),
           both ? strfmt("%.1f%%",
                         100.0 * std::abs(alg3.p_sys - sweep_p) / sweep_p)
                : "-"});
    }
  }
  std::printf("%s", table.str().c_str());
  std::printf("\nexpected: Algorithm 3 lands on the same crossing with an\n"
              "order of magnitude fewer simulations than the naive sweep.\n");
  return 0;
}
