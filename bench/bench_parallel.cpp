// S1 — serial vs parallel hot-path comparison. Each phase (SpMV, 2RM
// steady solve, 4RM assembly, a mini Problem-1 SA run) is timed at
// LCN_THREADS=1 and at a parallel width, metrics are checked to agree with
// the serial reference (the kernels are bit-identical by construction, so
// the tolerance is far tighter than the 1e-8 acceptance bound), and every
// measurement is appended to bench_results/BENCH_parallel.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "network/generators.hpp"
#include "opt/sa.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"

namespace {

using namespace lcn;

struct PhaseResult {
  double seconds = 0.0;
  std::vector<std::pair<std::string, double>> metrics;
};

bool metrics_agree(const PhaseResult& serial, const PhaseResult& parallel,
                   double rel_tol) {
  if (serial.metrics.size() != parallel.metrics.size()) return false;
  for (std::size_t i = 0; i < serial.metrics.size(); ++i) {
    const double a = serial.metrics[i].second;
    const double b = parallel.metrics[i].second;
    if (std::abs(a - b) > rel_tol * std::max(1.0, std::abs(a))) return false;
  }
  return true;
}

}  // namespace

int main() {
  benchutil::banner("Parallel hot-path engine — serial vs parallel",
                    "DESIGN.md §S1 (serial-equivalence contract)");
  const bool fast = env_flag("LCN_FAST");
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t wide = std::max<std::size_t>(
      2, static_cast<std::size_t>(env_double("LCN_THREADS", 4)));
  std::printf("hardware threads %zu, parallel width %zu%s\n\n", hw, wide,
              hw == 1 ? " (single-core host: speedups not expected)" : "");

  const BenchmarkCase bench = make_iccad_case(1);
  const CoolingNetwork net = make_tree_network(
      bench.problem.grid, make_uniform_layout(bench.problem.grid, 30, 64));

  const int spmv_reps = fast ? 40 : 400;
  const int solve_reps = fast ? 1 : 3;

  // Each phase runs under the currently configured pool width and reports
  // (wall seconds, headline metrics). Metrics must match across widths.
  struct Phase {
    const char* name;
    PhaseResult (*run)(const BenchmarkCase&, const CoolingNetwork&, int);
    int reps;
  };
  const std::vector<Phase> phases = {
      {"spmv_2rm",
       [](const BenchmarkCase& b, const CoolingNetwork& n, int reps) {
         const Thermal2RM sim(b.problem, {n}, 2);
         const sparse::CsrMatrix a = sim.assemble(5000.0).matrix;
         sparse::Vector x(a.cols());
         for (std::size_t i = 0; i < x.size(); ++i) {
           x[i] = 1.0 + 1e-3 * static_cast<double>(i % 97);
         }
         sparse::Vector y(a.rows());
         PhaseResult out;
         WallTimer timer;
         double checksum = 0.0;
         for (int rep = 0; rep < reps; ++rep) {
           a.multiply(x, y);
           checksum += y[y.size() / 2];
         }
         out.seconds = timer.seconds();
         out.metrics = {{"checksum", checksum},
                        {"nnz", static_cast<double>(a.nnz())}};
         return out;
       },
       spmv_reps},
      {"solve_2rm",
       [](const BenchmarkCase& b, const CoolingNetwork& n, int reps) {
         const Thermal2RM sim(b.problem, {n}, 4);
         PhaseResult out;
         WallTimer timer;
         ThermalField field;
         for (int rep = 0; rep < reps; ++rep) field = sim.simulate(5000.0);
         out.seconds = timer.seconds();
         out.metrics = {{"t_max_k", field.t_max},
                        {"delta_t_k", field.delta_t}};
         return out;
       },
       solve_reps},
      {"assemble_4rm",
       [](const BenchmarkCase& b, const CoolingNetwork& n, int reps) {
         const Thermal4RM sim(b.problem, {n});
         PhaseResult out;
         WallTimer timer;
         double nnz = 0.0;
         double checksum = 0.0;
         for (int rep = 0; rep < reps; ++rep) {
           const AssembledThermal system = sim.assemble(5000.0);
           nnz = static_cast<double>(system.matrix.nnz());
           checksum = system.matrix.values().front() +
                      system.matrix.values().back();
         }
         out.seconds = timer.seconds();
         out.metrics = {{"nnz", nnz}, {"checksum", checksum}};
         return out;
       },
       solve_reps},
      {"sa_mini_p1",
       [](const BenchmarkCase& b, const CoolingNetwork&, int) {
         TreeTopologyOptimizer opt(b, DesignObjective::kPumpingPower, 0xdac17u);
         const DesignOutcome outcome = opt.run(default_p1_stages(0.08));
         PhaseResult out;
         out.seconds = outcome.seconds;
         out.metrics = {{"feasible", outcome.feasible ? 1.0 : 0.0},
                        {"p_sys_pa", outcome.eval.p_sys},
                        {"t_max_k", outcome.eval.at_p.t_max},
                        {"delta_t_k", outcome.eval.at_p.delta_t},
                        {"w_pump_w", outcome.eval.w_pump}};
         return out;
       },
       1}};

  TextTable table({"phase", "serial (s)", strfmt("x%zu (s)", wide), "speedup",
                   "metrics"});
  bool all_agree = true;
  for (const Phase& phase : phases) {
    PhaseResult serial, parallel;
    for (const std::size_t threads : {std::size_t{1}, wide}) {
      set_global_pool_threads(threads);
      const instrument::Snapshot before = instrument::snapshot();
      const PhaseResult result = phase.run(bench, net, phase.reps);
      benchutil::PerfRecord record;
      record.bench = "bench_parallel";
      record.config = phase.name;
      record.threads = threads;
      record.seconds = result.seconds;
      record.metrics = result.metrics;
      record.counters = instrument::delta(before, instrument::snapshot());
      benchutil::append_perf_record(record);
      (threads == 1 ? serial : parallel) = result;
    }
    const bool agree = metrics_agree(serial, parallel, 1e-8);
    all_agree = all_agree && agree;
    table.add_row({phase.name, cell(serial.seconds, 3),
                   cell(parallel.seconds, 3),
                   parallel.seconds > 0.0
                       ? strfmt("%.2fx", serial.seconds / parallel.seconds)
                       : cell_na(),
                   agree ? "match" : "MISMATCH"});
  }
  set_global_pool_threads(0);  // back to the LCN_THREADS / hardware default

  std::printf("%s\n", table.str().c_str());
  std::printf("serial/parallel metric agreement: %s (tolerance 1e-8)\n",
              all_agree ? "PASS" : "FAIL");
  return all_agree ? 0 : 1;
}
