// E8 — Table 4: thermal-gradient minimization (Problem 2). ΔT* is replaced
// by a pumping budget W*_pump = 0.1% of the die power (paper §6); straight
// baseline vs the SA-optimized tree-like network, 4RM sign-off.
#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "opt/sa.hpp"

int main() {
  using namespace lcn;
  benchutil::banner("Table 4 — thermal gradient minimization (Problem 2)",
                    "paper §6 Table 4");
  // Grouped P2 evaluation (§5) is cheap, so the default schedule is richer.
  const double scale = benchutil::sa_scale(0.5);
  const std::vector<int> ids = benchutil::case_ids("1,2,3,4,5");
  std::printf("SA scale %.2f; W*_pump = 0.1%% of die power\n", scale);
  std::printf("stage schedule (paper Table 1, P2 variant):\n%s\n",
              format_stages(default_p2_stages(scale)).c_str());

  TextTable table({"case", "design", "P_sys (kPa)", "Tmax (K)",
                   "W_pump (mW)", "dT (K)", "dT reduction"});
  CsvWriter csv({"case", "design", "p_sys_pa", "t_max_k", "w_pump_w",
                 "delta_t_k", "seconds"});

  for (int id : ids) {
    BenchmarkCase bench = make_iccad_case(id);
    bench.constraints.w_pump_max = problem2_pump_budget(bench);

    const BaselineOutcome base =
        best_straight_baseline(bench, DesignObjective::kThermalGradient);
    if (base.feasible) {
      table.add_row({cell_int(id), "straight (baseline)",
                     cell(base.eval.p_sys / 1e3, 2),
                     cell(base.eval.at_p.t_max, 1),
                     cell(base.eval.w_pump * 1e3, 2),
                     cell(base.eval.at_p.delta_t, 2), "-"});
    } else {
      table.add_row({cell_int(id), "straight (baseline)", cell_na(),
                     cell_na(), cell_na(), cell_na(), "infeasible"});
    }
    csv.add_row({cell_int(id), "straight",
                 base.feasible ? cell(base.eval.p_sys, 2) : cell_na(),
                 base.feasible ? cell(base.eval.at_p.t_max, 3) : cell_na(),
                 base.feasible ? cell_sci(base.eval.w_pump, 4) : cell_na(),
                 base.feasible ? cell(base.eval.at_p.delta_t, 3) : cell_na(),
                 "0"});

    TreeTopologyOptimizer opt(bench, DesignObjective::kThermalGradient,
                              0xdac42u + static_cast<std::uint64_t>(id));
    const DesignOutcome ours = opt.run(default_p2_stages(scale));
    std::string reduction = "-";
    if (ours.feasible && base.feasible) {
      reduction = strfmt("%.1f%%", 100.0 * (1.0 - ours.eval.at_p.delta_t /
                                                      base.eval.at_p.delta_t));
    }
    if (ours.feasible) {
      table.add_row({cell_int(id), "tree-like (ours)",
                     cell(ours.eval.p_sys / 1e3, 2),
                     cell(ours.eval.at_p.t_max, 1),
                     cell(ours.eval.w_pump * 1e3, 2),
                     cell(ours.eval.at_p.delta_t, 2), reduction});
    } else {
      table.add_row({cell_int(id), "tree-like (ours)", cell_na(), cell_na(),
                     cell_na(), cell_na(), "infeasible"});
    }
    table.add_rule();
    csv.add_row({cell_int(id), "tree",
                 ours.feasible ? cell(ours.eval.p_sys, 2) : cell_na(),
                 ours.feasible ? cell(ours.eval.at_p.t_max, 3) : cell_na(),
                 ours.feasible ? cell_sci(ours.eval.w_pump, 4) : cell_na(),
                 ours.feasible ? cell(ours.eval.at_p.delta_t, 3) : cell_na(),
                 cell(ours.seconds, 1)});
    std::printf("case %d done (%.0f s, %zu candidate evaluations)\n", id,
                ours.seconds, ours.evaluations);
  }

  std::printf("\n%s", table.str().c_str());
  std::printf(
      "\nexpected shape (paper): under the same pumping budget, tree-like\n"
      "networks cut the thermal gradient substantially (paper: up to\n"
      "37.65%% on cases 1-4, more on case 5).\n");
  benchutil::maybe_save_csv(csv, "table4_p2.csv");
  return 0;
}
