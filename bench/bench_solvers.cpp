// E11 — google-benchmark microbenchmarks of the numerical substrate: SpMV,
// preconditioner setup, flow pressure solves, and full 4RM/2RM simulations
// (complementing Fig. 9(b) with absolute per-kernel numbers).
#include <benchmark/benchmark.h>

#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "sparse/preconditioner.hpp"
#include "sparse/solvers.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"

namespace {

using namespace lcn;

const BenchmarkCase& case1() {
  static const BenchmarkCase bench = make_iccad_case(1);
  return bench;
}

const CoolingNetwork& tree_net() {
  static const CoolingNetwork net = make_tree_network(
      case1().problem.grid,
      make_uniform_layout(case1().problem.grid, 30, 64));
  return net;
}

sparse::CsrMatrix thermal_matrix(int m) {
  const Thermal2RM sim(case1().problem, {tree_net()}, m);
  return sim.assemble(5000.0).matrix;
}

void BM_SpMV_2RM(benchmark::State& state) {
  const sparse::CsrMatrix a = thermal_matrix(static_cast<int>(state.range(0)));
  sparse::Vector x(a.cols(), 1.0);
  sparse::Vector y(a.rows());
  for (auto _ : state) {
    a.multiply(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["nnz"] = static_cast<double>(a.nnz());
}
BENCHMARK(BM_SpMV_2RM)->Arg(2)->Arg(4)->Arg(8);

void BM_Ilu0Setup(benchmark::State& state) {
  const sparse::CsrMatrix a = thermal_matrix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    sparse::Ilu0Preconditioner ilu(a);
    benchmark::DoNotOptimize(&ilu);
  }
}
BENCHMARK(BM_Ilu0Setup)->Arg(2)->Arg(4);

void BM_FlowSolve(benchmark::State& state) {
  const auto& bench = case1();
  const ChannelGeometry geom{bench.problem.grid.pitch(), 200e-6};
  const FlowSolver solver(tree_net(), geom, bench.problem.coolant);
  for (auto _ : state) {
    const FlowSolution sol = solver.solve(1.0);
    benchmark::DoNotOptimize(sol.system_flow);
  }
}
BENCHMARK(BM_FlowSolve);

void BM_Simulate2RM(benchmark::State& state) {
  const Thermal2RM sim(case1().problem, {tree_net()},
                       static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const ThermalField field = sim.simulate(5000.0);
    benchmark::DoNotOptimize(field.t_max);
  }
  state.counters["nodes"] = static_cast<double>(sim.node_count());
}
BENCHMARK(BM_Simulate2RM)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_Simulate4RM(benchmark::State& state) {
  const Thermal4RM sim(case1().problem, {tree_net()});
  for (auto _ : state) {
    const ThermalField field = sim.simulate(5000.0);
    benchmark::DoNotOptimize(field.t_max);
  }
  state.counters["nodes"] = static_cast<double>(sim.node_count());
}
BENCHMARK(BM_Simulate4RM)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Assemble4RM(benchmark::State& state) {
  const Thermal4RM sim(case1().problem, {tree_net()});
  for (auto _ : state) {
    const AssembledThermal system = sim.assemble(5000.0);
    benchmark::DoNotOptimize(system.matrix.nnz());
  }
}
BENCHMARK(BM_Assemble4RM)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
