// E18 — multi-tenant serving throughput (DESIGN.md §S22). The same batch of
// evaluation jobs is pushed through the fair-share scheduler at 1, 4 and 16
// concurrent lanes; aggregate throughput and per-job run-time quantiles
// (p50/p95) are reported per configuration. Single jobs are Amdahl-limited
// (Krylov solves keep a serial fraction), so on a multi-core host concurrent
// lanes overlap independent solves and aggregate throughput rises well above
// the single-lane baseline.
//
// Self-checking: on a host with >= 4 hardware threads and a pool of >= 4
// workers, exits nonzero unless aggregate throughput at 4 lanes reaches 2x
// the 1-lane baseline. On narrower hosts the check is skipped (and said so):
// with one core there is no overlap to win.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "geom/benchmarks.hpp"
#include "service/scheduler.hpp"

int main() {
  using namespace lcn;
  using Clock = std::chrono::steady_clock;
  benchutil::banner("Serving throughput — concurrent evaluation tenants",
                    "DESIGN.md §S22 (design-as-a-service)");

  const int case_id = benchutil::case_ids("1").front();
  const int jobs = static_cast<int>(
      env_int("LCN_SERVE_JOBS", env_flag("LCN_FAST") ? 8 : 24));
  const std::size_t pool = global_pool_threads();
  const std::size_t hw = std::thread::hardware_concurrency();
  std::printf("case %d, %d jobs per configuration, pool %zu, hardware %zu "
              "(LCN_CASES / LCN_SERVE_JOBS / LCN_THREADS)\n\n",
              case_id, jobs, pool, hw);

  service::JobRequest request;
  request.kind = service::JobKind::kEvaluate;
  request.case_id = case_id;
  request.sim = SimConfig{ThermalModelKind::k2RM, 4};

  // Prewarm the shared flow-plan cache so every configuration measures
  // steady-state serving, not the first tenant's one-time plan analysis.
  {
    service::Scheduler warm(service::Scheduler::Options{1});
    const service::JobResult r = warm.wait(warm.submit(request));
    if (r.status != service::JobStatus::kDone) {
      std::printf("FAIL: warmup job did not complete: %s\n", r.error.c_str());
      return 1;
    }
  }

  struct Row {
    std::size_t lanes = 0;
    double seconds = 0.0;
    double throughput = 0.0;  ///< jobs per second
    double p50 = 0.0, p95 = 0.0;
  };
  std::vector<Row> rows;

  for (const std::size_t lanes : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}}) {
    const instrument::Snapshot before = instrument::snapshot();
    const auto t0 = Clock::now();
    std::vector<double> run_seconds;
    {
      service::Scheduler scheduler(service::Scheduler::Options{lanes});
      std::vector<std::uint64_t> ids;
      ids.reserve(static_cast<std::size_t>(jobs));
      for (int i = 0; i < jobs; ++i) ids.push_back(scheduler.submit(request));
      for (const std::uint64_t id : ids) {
        const service::JobResult result = scheduler.wait(id);
        if (result.status != service::JobStatus::kDone) {
          std::printf("FAIL: job %llu: %s\n",
                      static_cast<unsigned long long>(id),
                      result.error.c_str());
          return 1;
        }
        run_seconds.push_back(result.seconds);
      }
    }
    Row row;
    row.lanes = lanes;
    row.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    row.throughput = row.seconds > 0.0 ? jobs / row.seconds : 0.0;
    row.p50 = metrics::sample_quantile(run_seconds, 0.50);
    row.p95 = metrics::sample_quantile(run_seconds, 0.95);
    rows.push_back(row);

    benchutil::PerfRecord record;
    record.bench = "bench_service";
    record.config = strfmt("case%d/c%zu", case_id, lanes);
    record.threads = pool;
    record.seconds = row.seconds;
    record.metrics = {{"lanes", static_cast<double>(lanes)},
                      {"jobs", static_cast<double>(jobs)},
                      {"throughput_jobs_per_s", row.throughput},
                      {"p50_s", row.p50},
                      {"p95_s", row.p95}};
    record.counters = instrument::delta(before, instrument::snapshot());
    benchutil::append_perf_record(record, "BENCH_service.json");
  }

  TextTable table({"lanes", "wall s", "jobs/s", "speedup", "p50 s", "p95 s"});
  for (const Row& row : rows) {
    table.add_row({cell_int(static_cast<int>(row.lanes)),
                   strfmt("%.3f", row.seconds),
                   strfmt("%.2f", row.throughput),
                   strfmt("%.2fx", row.throughput / rows.front().throughput),
                   strfmt("%.4f", row.p50), strfmt("%.4f", row.p95)});
  }
  std::printf("\n%s\n", table.str().c_str());

  const double speedup4 = rows[1].throughput / rows[0].throughput;
  if (hw >= 4 && pool >= 4) {
    if (speedup4 < 2.0) {
      std::printf("FAIL: aggregate throughput at 4 lanes is %.2fx the 1-lane "
                  "baseline (need >= 2.0x on a >=4-core host)\n", speedup4);
      return 1;
    }
    std::printf("OK: 4-lane aggregate throughput %.2fx >= 2.0x baseline\n",
                speedup4);
  } else {
    std::printf("note: throughput self-check skipped (hardware %zu, pool %zu "
                "— needs >= 4 of both); measured 4-lane speedup %.2fx\n",
                hw, pool, speedup4);
  }
  return 0;
}
