// S18 — symbolic/numeric split of the assembly pipeline: throughput of
// fresh per-probe assembly (symbolic analysis + numeric fill, the historical
// behavior) vs numeric refill on a cached AssemblyPlan, for the 2RM and 4RM
// models, plus steady-probe throughput with and without a persistent
// SteadyWorkspace. Every measurement is appended to
// bench_results/BENCH_assembly.json; the refilled systems are checked
// bit-identical to fresh ones before anything is timed.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/model_4rm.hpp"

namespace {

using namespace lcn;

double probe_pressure(int i) { return 3000.0 + 7.0 * static_cast<double>(i); }

bool bit_identical(const AssembledThermal& a, const AssembledThermal& b) {
  return a.matrix.row_ptr() == b.matrix.row_ptr() &&
         a.matrix.col_idx() == b.matrix.col_idx() &&
         a.matrix.values() == b.matrix.values() && a.rhs == b.rhs;
}

struct Measured {
  double seconds = 0.0;
  double per_probe_us = 0.0;
  instrument::Snapshot counters;
};

void report(const char* config, const Measured& m, int reps,
            double extra_speedup = 0.0) {
  std::printf("  %-16s %8.2f us/probe  (%d probes, %.3f s total)\n", config,
              m.per_probe_us, reps, m.seconds);
  benchutil::PerfRecord record;
  record.bench = "bench_assembly";
  record.config = config;
  record.threads = global_pool_threads();
  record.seconds = m.seconds;
  record.metrics.emplace_back("per_probe_us", m.per_probe_us);
  record.metrics.emplace_back("probes", static_cast<double>(reps));
  if (extra_speedup > 0.0) {
    record.metrics.emplace_back("speedup_vs_fresh", extra_speedup);
  }
  record.counters = m.counters;
  benchutil::append_perf_record(record, "BENCH_assembly.json");
}

/// Time `reps` fresh assemblies: each model below has never assembled, so its
/// first assemble() pays the full symbolic + numeric cost — the historical
/// per-probe price.
template <class Model>
Measured time_fresh(std::vector<Model>& virgin_models) {
  Measured m;
  const instrument::Snapshot before = instrument::snapshot();
  const WallTimer timer;
  for (std::size_t i = 0; i < virgin_models.size(); ++i) {
    const AssembledThermal sys =
        virgin_models[i].assemble(probe_pressure(static_cast<int>(i)));
    (void)sys;
  }
  m.seconds = timer.seconds();
  m.counters = instrument::delta(before, instrument::snapshot());
  m.per_probe_us =
      1e6 * m.seconds / static_cast<double>(virgin_models.size());
  return m;
}

template <class Model>
Measured time_refill(const Model& model, int reps) {
  Measured m;
  const instrument::Snapshot before = instrument::snapshot();
  const WallTimer timer;
  for (int i = 0; i < reps; ++i) {
    const AssembledThermal sys = model.assemble(probe_pressure(i));
    (void)sys;
  }
  m.seconds = timer.seconds();
  m.counters = instrument::delta(before, instrument::snapshot());
  m.per_probe_us = 1e6 * m.seconds / static_cast<double>(reps);
  return m;
}

}  // namespace

int main() {
  benchutil::banner("Assembly pipeline — fresh symbolic vs plan refill",
                    "DESIGN.md §S18 (symbolic/numeric split)");
  const bool fast = env_flag("LCN_FAST");
  const BenchmarkCase bench = make_iccad_case(1);
  const CoolingNetwork net = make_tree_network(
      bench.problem.grid, make_uniform_layout(bench.problem.grid, 30, 64));

  const int fresh_2rm = fast ? 4 : 16;
  const int refill_2rm = fast ? 60 : 600;
  const int fresh_4rm = fast ? 2 : 8;
  const int refill_4rm = fast ? 20 : 200;
  bool ok = true;

  std::printf("\n2RM (m = 4), case 1, %d fresh / %d refill probes\n",
              fresh_2rm, refill_2rm);
  {
    const Thermal2RM probing(bench.problem, {net}, 4);
    // Correctness gate before timing: refill ≡ fresh, bit for bit.
    const Thermal2RM reference(bench.problem, {net}, 4);
    if (!bit_identical(reference.assemble(probe_pressure(0)),
                       probing.assemble(probe_pressure(0)))) {
      std::printf("  !! refill mismatch vs fresh assembly\n");
      ok = false;
    }
    std::vector<Thermal2RM> virgins;
    virgins.reserve(static_cast<std::size_t>(fresh_2rm));
    for (int i = 0; i < fresh_2rm; ++i) {
      virgins.emplace_back(bench.problem, std::vector<CoolingNetwork>{net}, 4);
    }
    const Measured fresh = time_fresh(virgins);
    const Measured refill = time_refill(probing, refill_2rm);
    const double speedup = fresh.per_probe_us / refill.per_probe_us;
    report("2rm/fresh", fresh, fresh_2rm);
    report("2rm/refill", refill, refill_2rm, speedup);
    std::printf("  refill speedup: %.1fx\n", speedup);
    if (speedup < 2.0) {
      std::printf("  !! expected >= 2x probe throughput from refill\n");
      ok = false;
    }
  }

  std::printf("\n4RM, case 1, %d fresh / %d refill probes\n", fresh_4rm,
              refill_4rm);
  {
    const Thermal4RM probing(bench.problem, {net});
    const Thermal4RM reference(bench.problem, {net});
    if (!bit_identical(reference.assemble(probe_pressure(0)),
                       probing.assemble(probe_pressure(0)))) {
      std::printf("  !! refill mismatch vs fresh assembly\n");
      ok = false;
    }
    std::vector<Thermal4RM> virgins;
    virgins.reserve(static_cast<std::size_t>(fresh_4rm));
    for (int i = 0; i < fresh_4rm; ++i) {
      virgins.emplace_back(bench.problem, std::vector<CoolingNetwork>{net});
    }
    const Measured fresh = time_fresh(virgins);
    const Measured refill = time_refill(probing, refill_4rm);
    const double speedup = fresh.per_probe_us / refill.per_probe_us;
    report("4rm/fresh", fresh, fresh_4rm);
    report("4rm/refill", refill, refill_4rm, speedup);
    std::printf("  refill speedup: %.1fx\n", speedup);
    if (speedup < 2.0) {
      std::printf("  !! expected >= 2x probe throughput from refill\n");
      ok = false;
    }
  }

  // Full probe = assemble + preconditioner + steady solve, the unit the
  // pressure searches pay per P_sys. Fresh = the seed path (full symbolic
  // assembly, from-scratch ILU, allocating Krylov solve); refill = cached
  // plan + numeric-only refactorization + persistent workspace. Probes walk
  // a tight pressure ladder with warm starts, like Algorithm 2's searches.
  const int probe_fresh_reps = fast ? 6 : 24;
  const int probe_refill_reps = fast ? 30 : 120;
  std::printf("\nsteady probe (assemble + solve), 2RM, %d fresh / %d refill\n",
              probe_fresh_reps, probe_refill_reps);
  {
    auto ladder = [](int i) { return 4000.0 + 1.0 * static_cast<double>(i); };
    std::vector<Thermal2RM> virgins;
    virgins.reserve(static_cast<std::size_t>(probe_fresh_reps));
    for (int i = 0; i < probe_fresh_reps; ++i) {
      virgins.emplace_back(bench.problem, std::vector<CoolingNetwork>{net}, 4);
    }
    Measured fresh;
    {
      std::vector<double> warm;
      const instrument::Snapshot before = instrument::snapshot();
      const WallTimer timer;
      for (int i = 0; i < probe_fresh_reps; ++i) {
        const AssembledThermal sys = virgins[static_cast<std::size_t>(i)]
                                         .assemble(ladder(i));
        const ThermalField field =
            solve_steady(sys, 1e-9, warm.empty() ? nullptr : &warm);
        warm = field.temperatures;
      }
      fresh.seconds = timer.seconds();
      fresh.counters = instrument::delta(before, instrument::snapshot());
      fresh.per_probe_us =
          1e6 * fresh.seconds / static_cast<double>(probe_fresh_reps);
    }
    const Thermal2RM sim(bench.problem, {net}, 4);
    sim.assemble(ladder(0));  // plan built outside the timers
    Measured refill;
    {
      SteadyWorkspace workspace;
      std::vector<double> warm;
      const instrument::Snapshot before = instrument::snapshot();
      const WallTimer timer;
      for (int i = 0; i < probe_refill_reps; ++i) {
        const AssembledThermal sys = sim.assemble(ladder(i));
        const ThermalField field = solve_steady(
            sys, 1e-9, warm.empty() ? nullptr : &warm, &workspace);
        warm = field.temperatures;
      }
      refill.seconds = timer.seconds();
      refill.counters = instrument::delta(before, instrument::snapshot());
      refill.per_probe_us =
          1e6 * refill.seconds / static_cast<double>(probe_refill_reps);
    }
    const double speedup = fresh.per_probe_us / refill.per_probe_us;
    report("probe/fresh", fresh, probe_fresh_reps);
    report("probe/refill", refill, probe_refill_reps, speedup);
    std::printf("  probe speedup: %.2fx\n", speedup);
    if (speedup < 2.0) {
      std::printf("  !! expected >= 2x probe throughput from refill\n");
      ok = false;
    }
  }

  if (!ok) {
    std::printf("\nFAILED: see !! lines above\n");
    return 1;
  }
  std::printf("\nOK\n");
  return 0;
}
