// E3/E4 — Fig. 5 and Fig. 6: relation between temperatures and the system
// pressure drop. Per-cell temperatures show "turning points" (Fig. 5);
// ΔT = f(P_sys) is uni-modal for some networks and monotone decreasing for
// others (Fig. 6); T_max = h(P_sys) decreases monotonically.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/evaluator.hpp"

int main() {
  using namespace lcn;
  benchutil::banner("Fig. 5/6 — temperatures and dT vs P_sys",
                    "paper §4.1, Figs. 5-6");

  const BenchmarkCase bench = make_iccad_case(1);
  const Grid2D& grid = bench.problem.grid;
  const SimConfig sim{ThermalModelKind::k2RM, 4};

  struct NetDef {
    const char* name;
    CoolingNetwork net;
  };
  std::vector<NetDef> nets;
  nets.push_back({"straight", make_straight_channels(grid)});
  nets.push_back(
      {"tree(30,64)", make_tree_network(grid, make_uniform_layout(grid, 30, 64))});

  std::vector<double> pressures;
  for (double p = 500.0; p <= 260000.0; p *= 1.9) pressures.push_back(p);

  CsvWriter csv({"network", "p_sys_pa", "delta_t_k", "t_max_k",
                 "t_upstream_k", "t_downstream_k", "w_pump_mw"});

  for (NetDef& def : nets) {
    SystemEvaluator eval(bench.problem, def.net, sim);
    std::printf("\n--- network: %s ---\n", def.name);
    TextTable table({"P_sys (kPa)", "dT (K)", "Tmax (K)", "T_up (K)",
                     "T_down (K)", "W_pump (mW)"});
    double min_dt = 1e300;
    double min_dt_p = 0.0;
    double last_dt = 0.0;
    bool rose_after_min = false;
    for (double p : pressures) {
      const ThermalField field = eval.field(p);
      // Fig. 5: one upstream (west) and one downstream (east) node of the
      // bottom source layer, center row.
      const int row = field.map_rows / 2;
      const double t_up =
          field.source_maps[0][static_cast<std::size_t>(row) *
                                   field.map_cols + 1];
      const double t_down =
          field.source_maps[0][static_cast<std::size_t>(row) *
                                   field.map_cols + field.map_cols - 2];
      const double w = eval.pumping_power(p);
      table.add_row({cell(p / 1e3, 2), cell(field.delta_t, 2),
                     cell(field.t_max, 2), cell(t_up, 2), cell(t_down, 2),
                     cell(w * 1e3, 3)});
      csv.add_row({def.name, cell(p, 1), cell(field.delta_t, 4),
                   cell(field.t_max, 4), cell(t_up, 4), cell(t_down, 4),
                   cell(w * 1e3, 5)});
      if (field.delta_t < min_dt) {
        min_dt = field.delta_t;
        min_dt_p = p;
      } else if (field.delta_t > min_dt + 1e-3) {
        rose_after_min = true;
      }
      last_dt = field.delta_t;
    }
    std::printf("%s", table.str().c_str());
    std::printf("f(P_sys) shape: %s (min dT = %.2f K at %.1f kPa, final %.2f K)\n",
                rose_after_min ? "uni-modal (Fig. 6(a))"
                               : "monotone decreasing (Fig. 6(b))",
                min_dt, min_dt_p / 1e3, last_dt);
  }
  benchutil::maybe_save_csv(csv, "fig5_fig6_curves.csv");
  return 0;
}
