// E17 — island SA vs a single chain at equal evaluation budget
// (DESIGN.md §S21). K communicating chains (shared evaluator cache, shared
// Pareto archive, periodic migration) are compared against one chain given
// K× the iterations: the population's merged frontier should dominate at
// least as much objective volume as the deep single chain's, because the
// chains explore decorrelated rng streams while the archive keeps every
// feasible operating point any of them visits.
//
// Self-checking: exits nonzero if the K-chain frontier hypervolume falls
// below the single-chain one at the shared reference point.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "geom/benchmarks.hpp"
#include "opt/islands.hpp"

int main() {
  using namespace lcn;
  using Clock = std::chrono::steady_clock;
  benchutil::banner("Island SA — K chains vs one chain at equal budget",
                    "DESIGN.md §S21 (population-scale optimization)");

  const double scale = benchutil::sa_scale();
  const std::vector<int> ids = benchutil::case_ids("1");
  IslandOptions options = island_options_from_env();
  if (options.islands < 2) options.islands = 2;
  // The optimizer's default migration period targets full-length schedules;
  // this bench runs short stages, so default tighter (LCN_MIGRATION_PERIOD
  // still wins when set).
  options.migration_period =
      std::max(1, static_cast<int>(env_int("LCN_MIGRATION_PERIOD", 4)));
  const int k = options.islands;
  std::printf("islands %d, migration period %d, tempering %s, SA scale %.2f "
              "(LCN_ISLANDS / LCN_MIGRATION_PERIOD / LCN_PT / LCN_SA_SCALE)\n",
              k, options.migration_period, options.tempering ? "on" : "off",
              scale);

  auto scaled = [&](int value) {
    return std::max(1, static_cast<int>(std::lround(value * scale)));
  };
  // Iterations floor at two migration points per stage: below that the
  // communication machinery never engages and the comparison measures
  // nothing but the (identical) seeding.
  auto iters = [&](int value) {
    return std::max(2 * options.migration_period, scaled(value));
  };
  const SimConfig fast{ThermalModelKind::k2RM, 4};
  std::vector<SaStage> stages;
  stages.push_back({"i1-fixedP", iters(12), 1, scaled(8), 8, fast, true, 1});
  stages.push_back({"i2-full", iters(8), 1, scaled(6), 4, fast, false, 1});
  // The single-chain reference gets the whole population's iteration budget.
  std::vector<SaStage> single_stages = stages;
  for (SaStage& stage : single_stages) stage.iterations *= k;
  IslandOptions solo;
  solo.islands = 1;

  bool ok = true;
  for (int id : ids) {
    const BenchmarkCase bench = make_iccad_case(id);
    const std::uint64_t seed = static_cast<std::uint64_t>(
        env_int("LCN_ISLAND_SEED", 0x15a4d)) +
        static_cast<std::uint64_t>(id);

    const instrument::Snapshot before_single = instrument::snapshot();
    auto t0 = Clock::now();
    IslandOptimizer single(bench, DesignObjective::kPumpingPower, solo, seed);
    const IslandOutcome out_single = single.run(single_stages);
    const double seconds_single =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const instrument::Snapshot mid = instrument::snapshot();

    t0 = Clock::now();
    IslandOptimizer pop(bench, DesignObjective::kPumpingPower, options, seed);
    const IslandOutcome out_pop = pop.run(stages);
    const double seconds_pop =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const instrument::Snapshot after = instrument::snapshot();

    // Shared hypervolume reference just beyond the worst point either
    // frontier archived, so both volumes are measured in the same frame.
    double ref_w = 0.0, ref_dt = 0.0, ref_tm = 0.0;
    for (const IslandOutcome* out : {&out_single, &out_pop}) {
      for (const ParetoPoint& p : out->archive.points()) {
        ref_w = std::max(ref_w, p.w_pump * 1.05);
        ref_dt = std::max(ref_dt, p.delta_t * 1.05);
        ref_tm = std::max(ref_tm, p.t_max * 1.05);
      }
    }
    const double hv_single = out_single.archive.hypervolume(ref_w, ref_dt,
                                                            ref_tm);
    const double hv_pop = out_pop.archive.hypervolume(ref_w, ref_dt, ref_tm);
    const double ratio = hv_single > 0.0 ? hv_pop / hv_single : 1.0;

    TextTable table({"design", "evals", "frontier", "hypervolume",
                     "best W_pump (mW)", "seconds"});
    table.add_row({"single chain (K× iters)",
                   cell_int(static_cast<int>(out_single.best.evaluations)),
                   cell_int(static_cast<int>(out_single.archive.size())),
                   cell(hv_single, 4),
                   out_single.best.feasible
                       ? cell(out_single.best.eval.w_pump * 1e3, 3)
                       : cell_na(),
                   cell(seconds_single, 2)});
    table.add_row({strfmt("%d islands", k),
                   cell_int(static_cast<int>(out_pop.best.evaluations)),
                   cell_int(static_cast<int>(out_pop.archive.size())),
                   cell(hv_pop, 4),
                   out_pop.best.feasible
                       ? cell(out_pop.best.eval.w_pump * 1e3, 3)
                       : cell_na(),
                   cell(seconds_pop, 2)});
    std::printf("case %d:\n%s", id, table.str().c_str());
    std::printf("migrations %llu/%llu, pt swaps %llu/%llu, hypervolume "
                "ratio %.3f\n",
                static_cast<unsigned long long>(out_pop.migrations),
                static_cast<unsigned long long>(out_pop.migration_attempts),
                static_cast<unsigned long long>(out_pop.pt_swaps),
                static_cast<unsigned long long>(out_pop.pt_swap_attempts),
                ratio);

    benchutil::PerfRecord perf_single;
    perf_single.bench = "bench_islands";
    perf_single.config = strfmt("case%d/single", id);
    perf_single.threads = global_pool_threads();
    perf_single.seconds = seconds_single;
    perf_single.metrics = {
        {"hypervolume", hv_single},
        {"frontier", static_cast<double>(out_single.archive.size())},
        {"evaluations", static_cast<double>(out_single.best.evaluations)},
        {"w_pump_w", out_single.best.eval.w_pump}};
    perf_single.counters = instrument::delta(before_single, mid);
    benchutil::append_perf_record(perf_single, "BENCH_islands.json");

    benchutil::PerfRecord perf_pop;
    perf_pop.bench = "bench_islands";
    perf_pop.config = strfmt("case%d/islands%d", id, k);
    perf_pop.threads = global_pool_threads();
    perf_pop.seconds = seconds_pop;
    perf_pop.metrics = {
        {"hypervolume", hv_pop},
        {"hypervolume_ratio", ratio},
        {"frontier", static_cast<double>(out_pop.archive.size())},
        {"evaluations", static_cast<double>(out_pop.best.evaluations)},
        {"w_pump_w", out_pop.best.eval.w_pump},
        {"migrations", static_cast<double>(out_pop.migrations)},
        {"pt_swaps", static_cast<double>(out_pop.pt_swaps)}};
    perf_pop.counters = instrument::delta(mid, after);
    benchutil::append_perf_record(perf_pop, "BENCH_islands.json");

    if (!(hv_pop >= hv_single)) {
      std::printf("!! case %d: island frontier hypervolume %.6g fell below "
                  "the single-chain %.6g at equal budget\n",
                  id, hv_pop, hv_single);
      ok = false;
    }
    std::printf("\n");
  }
  if (!ok) return 1;
  std::printf("island frontier dominates at least the single-chain volume "
              "on every case (self-check passed)\n");
  return 0;
}
