// S23 — dynamic-scenario engine throughput: backward-Euler co-simulation
// stepping rate (steps/s) at the small (21×21) and Table-2 (101×101) grid
// scales under the full feedback stack — bursty power trace, thermostat
// pump with a slew limit, thermal throttling and the CDU coolant loop. A
// plan-refill vs fresh-assembly microbenchmark rides along: one transient
// step on a rebound (numeric-refill) stepper vs one step paying the full
// model + symbolic-analysis price, as the pre-§S23 pipeline did per probe.
// Every measurement is appended to bench_results/BENCH_transient.json. At
// the largest grid the bench self-checks that the refill path is >= 3x
// cheaper per step and exits nonzero if the win evaporates.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "network/generators.hpp"
#include "scenario/scenario.hpp"
#include "thermal/model_2rm.hpp"
#include "thermal/transient.hpp"

namespace {

using namespace lcn;

CoolingProblem make_problem(int g) {
  CoolingProblem problem;
  problem.grid = Grid2D(g, g, 100e-6);
  problem.stack = make_interlayer_stack(2, 200e-6);
  // Hold the areal power density fixed as the die grows.
  const double per_die =
      4.0 * (static_cast<double>(g) / 21.0) * (static_cast<double>(g) / 21.0);
  problem.source_power.push_back(synthesize_power_map(problem.grid, per_die, 21));
  problem.source_power.push_back(
      synthesize_power_map(problem.grid, 0.75 * per_die, 22));
  return problem;
}

std::vector<CoolingNetwork> replicate(const CoolingProblem& problem,
                                      const CoolingNetwork& net) {
  return std::vector<CoolingNetwork>(
      static_cast<std::size_t>(problem.stack.channel_count()), net);
}

void report(int g, const char* config, double seconds, int steps,
            const instrument::Snapshot& counters,
            std::vector<std::pair<std::string, double>> metrics) {
  const double per_step_us = 1e6 * seconds / static_cast<double>(steps);
  std::printf("  %-14s %8.1f us/step  %8.0f steps/s  (%d steps, %.3f s)\n",
              config, per_step_us,
              static_cast<double>(steps) / seconds, steps, seconds);
  benchutil::PerfRecord record;
  record.bench = "bench_transient";
  record.config = strfmt("g%d/%s", g, config);
  record.threads = global_pool_threads();
  record.seconds = seconds;
  record.metrics.emplace_back("steps", static_cast<double>(steps));
  record.metrics.emplace_back("per_step_us", per_step_us);
  record.metrics.emplace_back("steps_per_s",
                              static_cast<double>(steps) / seconds);
  for (auto& m : metrics) record.metrics.push_back(std::move(m));
  record.counters = counters;
  benchutil::append_perf_record(record, "BENCH_transient.json");
}

/// Full scenario-engine run: the §S23 feedback stack end to end.
void engine_bench(int g, const CoolingProblem& problem,
                  const CoolingNetwork& net, int steps) {
  ScenarioConfig config;
  config.sim = SimConfig{ThermalModelKind::k2RM, 4};
  config.dt = 1e-3;
  config.steps = steps;
  config.trace.kind = TraceKind::kBursty;
  config.trace.seed = 7;
  config.pump.kind = PumpPolicyKind::kThermostat;
  config.pump.p_fixed = 6.0e3;
  config.pump.t_target = 320.0;
  config.pump.gain = 400.0;
  config.pump.p_min = 2.0e3;
  config.pump.p_max = 1.2e4;
  config.pump.slew_rate = 2.0e6;
  config.throttle.t_throttle = 360.0;
  config.cdu_enabled = true;

  const instrument::Snapshot before = instrument::snapshot();
  const WallTimer timer;
  const ScenarioResult result = run_scenario(problem, net, config);
  const double seconds = timer.seconds();
  report(g, "engine", seconds, result.steps,
         instrument::delta(before, instrument::snapshot()),
         {{"peak_t_max", result.peak_t_max},
          {"peak_delta_t", result.peak_delta_t}});
}

/// Per-step price of the plan-refill path: rebind the stepper on a
/// numerically refilled assembly (new pressure, cached plan) and advance.
double refill_per_step_us(int g, const CoolingProblem& problem,
                          const std::vector<CoolingNetwork>& nets, int reps,
                          bool* ok) {
  const SteadySolverConfig solver;
  const Thermal2RM model(problem, nets, 4);
  AssembledThermal sys = model.assemble(5.0e3);
  TransientStepper stepper(sys, 1e-3, solver);
  std::vector<double> temps(stepper.nodes(), 300.0);
  stepper.step(temps, 1e-9);  // warm: first solve off the clock

  const instrument::Snapshot before = instrument::snapshot();
  const WallTimer timer;
  for (int i = 0; i < reps; ++i) {
    sys = model.assemble(5.0e3 + 2.0 * static_cast<double>(i));
    stepper.rebind(sys, 1e-3);
    if (!stepper.last_rebind_refilled()) {
      std::printf("  !! rebind fell back to symbolic analysis\n");
      *ok = false;
    }
    stepper.step(temps, 1e-9);
  }
  const double seconds = timer.seconds();
  report(g, "step/refill", seconds, reps,
         instrument::delta(before, instrument::snapshot()), {});
  return 1e6 * seconds / static_cast<double>(reps);
}

/// Per-step price of the historical path: a virgin model's first assembly
/// plus a from-scratch stepper (full symbolic analysis) per step.
double fresh_per_step_us(int g, const CoolingProblem& problem,
                         const std::vector<CoolingNetwork>& nets, int reps) {
  const SteadySolverConfig solver;
  std::vector<Thermal2RM> virgins;
  virgins.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) virgins.emplace_back(problem, nets, 4);

  const instrument::Snapshot before = instrument::snapshot();
  const WallTimer timer;
  for (int i = 0; i < reps; ++i) {
    const AssembledThermal sys =
        virgins[static_cast<std::size_t>(i)].assemble(
            5.0e3 + 2.0 * static_cast<double>(i));
    TransientStepper stepper(sys, 1e-3, solver);
    std::vector<double> temps(stepper.nodes(), 300.0);
    stepper.step(temps, 1e-9);
  }
  const double seconds = timer.seconds();
  report(g, "step/fresh", seconds, reps,
         instrument::delta(before, instrument::snapshot()), {});
  return 1e6 * seconds / static_cast<double>(reps);
}

}  // namespace

int main() {
  benchutil::banner("Dynamic-scenario engine — stepping throughput",
                    "DESIGN.md §S23 (time-capable co-simulation stack)");
  const bool fast = env_flag("LCN_FAST");
  const std::vector<int> grids = {21, 101};
  bool ok = true;

  for (int g : grids) {
    const bool large = g > 50;
    const int engine_steps = fast ? (large ? 6 : 20) : (large ? 40 : 150);
    const int refill_reps = fast ? (large ? 8 : 30) : (large ? 40 : 150);
    const int fresh_reps = fast ? (large ? 2 : 6) : (large ? 8 : 24);

    const CoolingProblem problem = make_problem(g);
    const CoolingNetwork net = make_straight_channels(problem.grid);
    const std::vector<CoolingNetwork> nets = replicate(problem, net);
    std::printf("\n%dx%d grid, 2 dies\n", g, g);

    engine_bench(g, problem, net, engine_steps);
    const double refill_us = refill_per_step_us(g, problem, nets, refill_reps,
                                                &ok);
    const double fresh_us = fresh_per_step_us(g, problem, nets, fresh_reps);
    const double speedup = fresh_us / refill_us;
    std::printf("  refill speedup: %.1fx\n", speedup);

    benchutil::PerfRecord record;
    record.bench = "bench_transient";
    record.config = strfmt("g%d/speedup", g);
    record.threads = global_pool_threads();
    record.metrics.emplace_back("refill_speedup", speedup);
    benchutil::append_perf_record(record, "BENCH_transient.json");

    // §S23 self-check at the largest grid of the sweep.
    if (g == grids.back() && speedup < 3.0) {
      std::printf("  !! expected >= 3x per-step win from plan refill\n");
      ok = false;
    }
  }

  if (!ok) {
    std::printf("\nFAILED: see !! lines above\n");
    return 1;
  }
  std::printf("\nOK\n");
  return 0;
}
