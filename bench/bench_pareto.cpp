// Trade-off frontier (paper abstract: cooling networks "achieve more
// desirable trade-offs between energy efficiency and thermal profile"):
// sweep pumping-power budgets on case 1 and record the best achievable ΔT
// for the straight baseline and for a tree-like network — the tree curve
// should dominate (lower ΔT at every budget) over the practical range.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/evaluator.hpp"

int main() {
  using namespace lcn;
  benchutil::banner("Trade-off frontier — dT vs pumping-power budget",
                    "paper abstract / §3 (energy vs thermal profile)");

  const BenchmarkCase bench = make_iccad_case(1);
  const Grid2D& grid = bench.problem.grid;
  const SimConfig sim{ThermalModelKind::k2RM, 4};

  const CoolingNetwork straight = make_straight_channels(grid);
  const CoolingNetwork tree =
      make_tree_network(grid, make_uniform_layout(grid, 30, 64));

  SystemEvaluator eval_straight(bench.problem, straight, sim);
  SystemEvaluator eval_tree(bench.problem, tree, sim);

  TextTable table({"W budget (mW)", "straight dT (K)", "tree dT (K)",
                   "tree advantage"});
  CsvWriter csv({"w_budget_mw", "straight_dt_k", "tree_dt_k"});

  int tree_wins = 0;
  int rows = 0;
  for (double budget_mw : {1.0, 2.0, 5.0, 10.0, 20.0, 42.0, 80.0, 160.0}) {
    DesignConstraints limits = bench.constraints;
    limits.delta_t_max = 0.0;  // unused by evaluate_p2
    limits.w_pump_max = budget_mw * 1e-3;
    const EvalResult rs = evaluate_p2(eval_straight, limits);
    const EvalResult rt = evaluate_p2(eval_tree, limits);
    std::string advantage = "-";
    if (rs.feasible && rt.feasible) {
      advantage = strfmt("%.1f%%", 100.0 * (1.0 - rt.score / rs.score));
      ++rows;
      if (rt.score <= rs.score) ++tree_wins;
    }
    table.add_row({cell(budget_mw, 1),
                   rs.feasible ? cell(rs.score, 2) : cell_na(),
                   rt.feasible ? cell(rt.score, 2) : cell_na(), advantage});
    csv.add_row({cell(budget_mw, 3),
                 rs.feasible ? cell(rs.score, 4) : cell_na(),
                 rt.feasible ? cell(rt.score, 4) : cell_na()});
  }
  std::printf("%s", table.str().c_str());
  std::printf("\ntree-like dominates on %d of %d comparable budgets "
              "(fixed topology, no SA — the Table 3/4 benches optimize it "
              "further).\n",
              tree_wins, rows);
  benchutil::maybe_save_csv(csv, "pareto_tradeoff.csv");
  return 0;
}
