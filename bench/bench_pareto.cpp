// Trade-off frontier (paper abstract: cooling networks "achieve more
// desirable trade-offs between energy efficiency and thermal profile"):
// sweep pumping-power budgets on case 1 and record the best achievable ΔT
// for the straight baseline and for a tree-like network — the tree curve
// should dominate (lower ΔT at every budget) over the practical range.
//
// The per-family operating points feed the shared ParetoArchive
// (opt/pareto.hpp, DESIGN.md §S21): dominance tests and the frontier
// hypervolume come from the same code the island optimizer uses, and both
// frontiers are saved as JSONL snapshots next to the CSV.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/table.hpp"
#include "geom/benchmarks.hpp"
#include "network/generators.hpp"
#include "opt/evaluator.hpp"
#include "opt/pareto.hpp"

int main() {
  using namespace lcn;
  benchutil::banner("Trade-off frontier — dT vs pumping-power budget",
                    "paper abstract / §3 (energy vs thermal profile)");

  const BenchmarkCase bench = make_iccad_case(1);
  const Grid2D& grid = bench.problem.grid;
  const SimConfig sim{ThermalModelKind::k2RM, 4};

  const CoolingNetwork straight = make_straight_channels(grid);
  const CoolingNetwork tree =
      make_tree_network(grid, make_uniform_layout(grid, 30, 64));

  SystemEvaluator eval_straight(bench.problem, straight, sim);
  SystemEvaluator eval_tree(bench.problem, tree, sim);

  TextTable table({"W budget (mW)", "straight dT (K)", "tree dT (K)",
                   "tree advantage"});
  CsvWriter csv({"w_budget_mw", "straight_dt_k", "tree_dt_k"});

  // One archive per family. The archive dedups by design hash, and a budget
  // sweep revisits the same network at different operating points, so each
  // point's key mixes the budget index into the content hash.
  ParetoArchive frontier_straight;
  ParetoArchive frontier_tree;
  auto archive_point = [](ParetoArchive& archive, const CoolingNetwork& net,
                          const EvalResult& result, int budget_index,
                          const char* tag) {
    if (!result.feasible) return;
    ParetoPoint point;
    point.design = net.content_hash() ^
                   (0x9e3779b97f4a7c15ULL *
                    static_cast<std::uint64_t>(budget_index + 1));
    point.w_pump = result.w_pump;
    point.delta_t = result.at_p.delta_t;
    point.t_max = result.at_p.t_max;
    point.p_sys = result.p_sys;
    point.tag = tag;
    archive.insert(point);
  };

  int tree_wins = 0;
  int dominated_rows = 0;
  int rows = 0;
  int budget_index = 0;
  for (double budget_mw : {1.0, 2.0, 5.0, 10.0, 20.0, 42.0, 80.0, 160.0}) {
    DesignConstraints limits = bench.constraints;
    limits.delta_t_max = 0.0;  // unused by evaluate_p2
    limits.w_pump_max = budget_mw * 1e-3;
    const EvalResult rs = evaluate_p2(eval_straight, limits);
    const EvalResult rt = evaluate_p2(eval_tree, limits);
    archive_point(frontier_straight, straight, rs, budget_index, "straight");
    archive_point(frontier_tree, tree, rt, budget_index, "tree");
    std::string advantage = "-";
    if (rs.feasible && rt.feasible) {
      advantage = strfmt("%.1f%%", 100.0 * (1.0 - rt.score / rs.score));
      ++rows;
      if (rt.score <= rs.score) ++tree_wins;
      ParetoPoint ps, pt;
      ps.w_pump = rs.w_pump;
      ps.delta_t = rs.at_p.delta_t;
      ps.t_max = rs.at_p.t_max;
      pt.w_pump = rt.w_pump;
      pt.delta_t = rt.at_p.delta_t;
      pt.t_max = rt.at_p.t_max;
      if (pareto_dominates(pt, ps)) ++dominated_rows;
    }
    table.add_row({cell(budget_mw, 1),
                   rs.feasible ? cell(rs.score, 2) : cell_na(),
                   rt.feasible ? cell(rt.score, 2) : cell_na(), advantage});
    csv.add_row({cell(budget_mw, 3),
                 rs.feasible ? cell(rs.score, 4) : cell_na(),
                 rt.feasible ? cell(rt.score, 4) : cell_na()});
    ++budget_index;
  }
  std::printf("%s", table.str().c_str());
  std::printf("\ntree-like dominates on %d of %d comparable budgets "
              "(%d by strict 3-objective Pareto dominance; fixed topology, "
              "no SA — the Table 3/4 benches optimize it further).\n",
              tree_wins, rows, dominated_rows);

  // Frontier hypervolume against a shared reference just beyond the worst
  // observed point in either family: the larger volume is the more
  // desirable trade-off surface.
  double ref_w = 0.0, ref_dt = 0.0, ref_tm = 0.0;
  for (const ParetoArchive* archive : {&frontier_straight, &frontier_tree}) {
    for (const ParetoPoint& p : archive->points()) {
      ref_w = std::max(ref_w, p.w_pump * 1.05);
      ref_dt = std::max(ref_dt, p.delta_t * 1.05);
      ref_tm = std::max(ref_tm, p.t_max * 1.05);
    }
  }
  const double hv_straight =
      frontier_straight.hypervolume(ref_w, ref_dt, ref_tm);
  const double hv_tree = frontier_tree.hypervolume(ref_w, ref_dt, ref_tm);
  std::printf("frontier sizes: straight %zu / tree %zu; hypervolume "
              "straight %.4g / tree %.4g (shared reference)\n",
              frontier_straight.size(), frontier_tree.size(), hv_straight,
              hv_tree);

  benchutil::maybe_save_csv(csv, "pareto_tradeoff.csv");
  if (!env_flag("LCN_NO_CSV")) {
    try {
      frontier_straight.save_jsonl("bench_results/pareto_straight.jsonl");
      frontier_tree.save_jsonl("bench_results/pareto_tree.jsonl");
      std::printf("  [jsonl: bench_results/pareto_{straight,tree}.jsonl]\n");
    } catch (...) {
      // Snapshots are best-effort side outputs, like the CSVs.
    }
  }
  return 0;
}
