#!/usr/bin/env bash
# Run every bench binary in smoke mode (LCN_FAST=1) and collect the side
# outputs — per-bench CSVs and the machine-readable perf records
# (BENCH_parallel.json, BENCH_reliability.json, BENCH_assembly.json,
# BENCH_multigrid.json, BENCH_transient.json, BENCH_metrics.json) — into
# ./bench_results/.
# Four benches self-check and exit nonzero on a regression: bench_assembly
# (plan refills bit-identical to fresh assemblies, >= 2x refill probe
# throughput), bench_multigrid (multigrid keeps >= 3x fewer Krylov
# iterations than ILU(0)), bench_transient (the scenario engine's
# plan-refill step stays >= 3x cheaper than a fresh symbolic rebuild) and
# bench_metrics (an enabled histogram observation stays within a bounded
# factor of a bare counter add).
#
# Usage: scripts/run_benches.sh [build-dir]
#   build-dir   defaults to ./build (must already be built)
#
# Knobs (see bench/bench_util.hpp): LCN_FAST is forced on here; LCN_CASES,
# LCN_SA_SCALE, LCN_THREADS pass through to the benches.
set -euo pipefail

build_dir="${1:-build}"
if [[ ! -d "${build_dir}/bench" ]]; then
  echo "error: ${build_dir}/bench not found — build the project first:" >&2
  echo "  cmake -B ${build_dir} -S . && cmake --build ${build_dir} -j" >&2
  exit 1
fi

mkdir -p bench_results
failures=0
for bench in "${build_dir}"/bench/bench_*; do
  [[ -x "${bench}" && ! -d "${bench}" ]] || continue
  name="$(basename "${bench}")"
  echo "=== ${name} (LCN_FAST=1) ==="
  # Benches write bench_results/ relative to the working directory, so run
  # from the repo root to collect everything in one place.
  if ! LCN_FAST=1 "${bench}"; then
    echo "!!! ${name} failed" >&2
    failures=$((failures + 1))
  fi
  echo
done

echo "collected outputs in bench_results/:"
ls -l bench_results/ || true
if [[ "${failures}" -gt 0 ]]; then
  echo "${failures} bench(es) failed" >&2
  exit 1
fi
