#!/usr/bin/env python3
"""Aggregate an LCN JSONL trace (LCN_TRACE output, DESIGN.md S19) into
per-span profile rollups and collapsed-stack flamegraph output.

Usage:
    python3 scripts/trace_profile.py trace.jsonl [--top N] [--folded out.txt]

For every span name the rollup reports:
  count    completed spans
  total    wall time summed over spans (children included)
  self     total minus time spent in child spans (the span's own cost)
  min/avg/max  per-span wall time

--folded writes collapsed-stack lines ("root;child;leaf <microseconds>"),
the input format of standard flamegraph tooling (flamegraph.pl, speedscope,
inferno). Samples are integer microseconds of *self* time per unique stack.

Stdlib only. Validates the trace while aggregating (same contract as
trace_to_chrome.py):
  - every line must parse as a self-contained JSON object,
  - begin/end events must pair up as a stack per thread,
  - timestamps must be monotone non-decreasing per thread.
Exits non-zero (with a message on stderr) on any violation.
"""

import argparse
import json
import sys


class SpanStats:
    __slots__ = ("count", "total_ns", "self_ns", "min_ns", "max_ns")

    def __init__(self):
        self.count = 0
        self.total_ns = 0
        self.self_ns = 0
        self.min_ns = None
        self.max_ns = 0

    def record(self, total_ns, self_ns):
        self.count += 1
        self.total_ns += total_ns
        self.self_ns += self_ns
        self.min_ns = total_ns if self.min_ns is None else min(
            self.min_ns, total_ns)
        self.max_ns = max(self.max_ns, total_ns)


def aggregate(lines):
    """Return (stats_by_name, folded_by_stack, event_count, errors)."""
    errors = []
    stats = {}    # name -> SpanStats
    folded = {}   # "a;b;c" -> self_ns
    # tid -> [[name, start_ns, child_ns], ...] of open B events
    stacks = {}
    last_ts = {}  # tid -> last seen ts_ns
    events = 0
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            ev = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        ph = ev.get("ph")
        name = ev.get("name", "?")
        if ph == "M":
            continue  # manifest header
        if ph not in ("B", "E", "i", "C"):
            errors.append(f"line {lineno}: unknown phase {ph!r}")
            continue
        events += 1
        tid = ev.get("tid", 0)
        ts_ns = ev.get("ts_ns")
        if not isinstance(ts_ns, int):
            errors.append(f"line {lineno}: missing/non-integer ts_ns")
            continue
        if ts_ns < last_ts.get(tid, 0):
            errors.append(
                f"line {lineno}: non-monotonic ts_ns on tid {tid} "
                f"({ts_ns} < {last_ts[tid]})")
        last_ts[tid] = ts_ns
        if ph == "B":
            stacks.setdefault(tid, []).append([name, ts_ns, 0])
        elif ph == "E":
            stack = stacks.setdefault(tid, [])
            if not stack:
                errors.append(f"line {lineno}: E '{name}' without open span "
                              f"on tid {tid}")
                continue
            if stack[-1][0] != name:
                errors.append(f"line {lineno}: E '{name}' does not match "
                              f"open span '{stack[-1][0]}' on tid {tid}")
                continue
            _, start_ns, child_ns = stack.pop()
            total_ns = ts_ns - start_ns
            self_ns = max(0, total_ns - child_ns)
            stats.setdefault(name, SpanStats()).record(total_ns, self_ns)
            path = ";".join([frame[0] for frame in stack] + [name])
            folded[path] = folded.get(path, 0) + self_ns
            if stack:
                stack[-1][2] += total_ns  # bill total into the parent
    for tid, stack in stacks.items():
        if stack:
            open_names = [frame[0] for frame in stack]
            errors.append(f"tid {tid}: unclosed span(s) at EOF: {open_names}")
    return stats, folded, events, errors


def fmt_ms(ns):
    return f"{ns / 1e6:.3f}"


def render_table(stats, top):
    rows = sorted(stats.items(), key=lambda kv: kv[1].self_ns, reverse=True)
    if top > 0:
        rows = rows[:top]
    header = ("span", "count", "self ms", "total ms", "min ms", "avg ms",
              "max ms")
    table = [header]
    for name, st in rows:
        avg_ns = st.total_ns / st.count if st.count else 0
        table.append((name, str(st.count), fmt_ms(st.self_ns),
                      fmt_ms(st.total_ns), fmt_ms(st.min_ns or 0),
                      fmt_ms(avg_ns), fmt_ms(st.max_ns)))
    widths = [max(len(row[i]) for row in table) for i in range(len(header))]
    lines = []
    for ri, row in enumerate(table):
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        lines.append("  ".join(cells))
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv):
    parser = argparse.ArgumentParser(
        description="Per-span self/total-time rollups from an LCN JSONL "
                    "trace, plus collapsed-stack flamegraph output.")
    parser.add_argument("trace", help="JSONL trace file (LCN_TRACE output)")
    parser.add_argument("--top", type=int, default=0,
                        help="show only the N spans with the most self time")
    parser.add_argument("--folded", metavar="PATH",
                        help="write collapsed-stack lines (flamegraph.pl / "
                             "speedscope input; samples = self-time us)")
    args = parser.parse_args(argv[1:])

    with open(args.trace, encoding="utf-8") as fh:
        stats, folded, events, errors = aggregate(fh)
    for err in errors:
        print(f"trace_profile: {err}", file=sys.stderr)

    if stats:
        print(render_table(stats, args.top))
    else:
        print("trace_profile: no completed spans in trace", file=sys.stderr)

    if args.folded:
        with open(args.folded, "w", encoding="utf-8") as fh:
            for path in sorted(folded):
                fh.write(f"{path} {folded[path] // 1000}\n")
        print(f"trace_profile: {len(folded)} stacks -> {args.folded}")

    print(f"trace_profile: {events} events, "
          f"{sum(s.count for s in stats.values())} spans, "
          f"{len(stats)} span names")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
