#!/usr/bin/env python3
"""Minimal NDJSON client for the lcn_serve daemon (DESIGN.md S22).

Standard library only. One JSON object per line in both directions:

  lcn_client.py --addr tcp:127.0.0.1:7733 ping
  lcn_client.py --addr unix:/tmp/lcn.sock submit --kind evaluate --case 1
  lcn_client.py --addr tcp:127.0.0.1:7733 result --job 3
  lcn_client.py --addr tcp:127.0.0.1:7733 smoke --scale 0.005
  lcn_client.py --addr tcp:127.0.0.1:7733 metrics
  lcn_client.py --addr tcp:127.0.0.1:7733 scrape

The `smoke` mode is what CI runs against an asan build of the daemon: it
submits two concurrent *streamed* design jobs at a tiny SA scale, then reads
the multiplexed event stream off the single connection and checks that every
job acks, starts, emits sa_iter progress, and lands a final `done` result.
Exits nonzero on any failure or on hitting --timeout.

`metrics` fetches the JSON metrics snapshot over the NDJSON protocol and
validates its shape. `scrape` speaks raw HTTP to the same port (the daemon
co-hosts a Prometheus text endpoint, DESIGN.md S24) and validates the
exposition with a stdlib-only parser: every histogram's buckets must be
cumulative and its `+Inf` bucket must equal `_count`.
"""

import argparse
import json
import socket
import sys
import time


def connect(addr, timeout):
    """Open a socket to `addr` ('unix:/path' or 'tcp:host:port')."""
    if addr.startswith("unix:"):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(addr[len("unix:"):])
        return sock
    if addr.startswith("tcp:"):
        host, _, port = addr[len("tcp:"):].rpartition(":")
        if not host or not port.isdigit():
            raise ValueError("tcp address must be tcp:host:port: %r" % addr)
        return socket.create_connection((host, int(port)), timeout=timeout)
    raise ValueError("address must start with unix: or tcp:, got %r" % addr)


class LineChannel:
    """Newline-delimited JSON over a socket."""

    def __init__(self, sock):
        self.sock = sock
        self.buf = b""

    def send(self, obj):
        self.sock.sendall((json.dumps(obj) + "\n").encode("utf-8"))

    def recv(self, deadline=None):
        """Return the next decoded line, or None on clean EOF."""
        while b"\n" not in self.buf:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("deadline exceeded waiting for a line")
                self.sock.settimeout(min(remaining, 10.0))
            try:
                chunk = self.sock.recv(65536)
            except socket.timeout:
                # Quiet stretch (e.g. a slow 4RM sign-off between sa_iter
                # events) — keep waiting until the overall deadline.
                continue
            if not chunk:
                return None
            self.buf += chunk
        line, _, self.buf = self.buf.partition(b"\n")
        return json.loads(line.decode("utf-8"))


def one_shot(args, request):
    """Send a single request, print the reply, exit 0 iff ok:true."""
    channel = LineChannel(connect(args.addr, args.timeout))
    channel.send(request)
    reply = channel.recv(deadline=time.monotonic() + args.timeout)
    if reply is None:
        print("error: server closed the connection", file=sys.stderr)
        return 1
    print(json.dumps(reply, indent=2 if args.pretty else None))
    return 0 if reply.get("ok") else 1


def submit_request(args):
    request = {"op": "submit", "kind": args.kind, "case": args.case,
               "objective": args.objective, "seed": args.seed,
               "model": args.model}
    if args.kind == "design":
        request["scale"] = args.scale
    if args.kind == "sweep":
        request["scenarios"] = args.scenarios
    if args.name:
        request["name"] = args.name
    if args.shares:
        request["shares"] = args.shares
    if args.job_timeout > 0:
        request["timeout"] = args.job_timeout
    return request


def metrics_op(args):
    """Fetch the JSON metrics snapshot ({"op":"metrics"}) and validate it."""
    channel = LineChannel(connect(args.addr, args.timeout))
    channel.send({"op": "metrics"})
    reply = channel.recv(deadline=time.monotonic() + args.timeout)
    if reply is None:
        print("error: server closed the connection", file=sys.stderr)
        return 1
    print(json.dumps(reply, indent=2 if args.pretty else None))
    failures = []
    if not reply.get("ok"):
        failures.append("reply is not ok: %r" % reply.get("error"))
    snap = reply.get("metrics")
    if not isinstance(snap, dict):
        failures.append("missing 'metrics' object")
    else:
        for section in ("histograms", "gauges", "counters"):
            if not isinstance(snap.get(section), dict):
                failures.append("metrics.%s is missing" % section)
        for name, hist in snap.get("histograms", {}).items():
            buckets = hist.get("buckets", {})
            if sum(buckets.values()) != hist.get("count"):
                failures.append(
                    "%s: bucket sum %d != count %r" % (
                        name, sum(buckets.values()), hist.get("count")))
    if "counters" not in reply:
        failures.append("missing top-level instrument 'counters'")
    if "manifest" not in reply:
        failures.append("missing 'manifest'")
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


def parse_prometheus(text):
    """Parse text exposition format 0.0.4 into (types, samples, errors).

    types:   metric family name -> declared type
    samples: series name -> list of (labels_dict, value) in document order
    """
    types, samples, errors = {}, {}, []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                types[parts[2]] = parts[3] if len(parts) > 3 else ""
            continue
        brace = line.find("{")
        labels = {}
        if brace >= 0:
            close = line.rfind("}")
            if close < brace:
                errors.append("line %d: unbalanced braces: %r" % (
                    lineno, line))
                continue
            name = line[:brace]
            for part in line[brace + 1:close].split(","):
                if not part:
                    continue
                key, eq, val = part.partition("=")
                if not eq or len(val) < 2 or val[0] != '"' or val[-1] != '"':
                    errors.append("line %d: bad label %r" % (lineno, part))
                    break
                labels[key] = val[1:-1]
            rest = line[close + 1:].split()
        else:
            fields = line.split()
            name, rest = fields[0], fields[1:]
        if len(rest) not in (1, 2):  # optional trailing timestamp
            errors.append("line %d: expected 'name value': %r" % (
                lineno, line))
            continue
        try:
            value = float(rest[0])
        except ValueError:
            errors.append("line %d: non-numeric value %r" % (
                lineno, rest[0]))
            continue
        samples.setdefault(name, []).append((labels, value))
    return types, samples, errors


def check_histograms(types, samples):
    """Cross-check every declared histogram family; return failure strings."""
    failures = []
    histogram_families = [n for n, t in types.items() if t == "histogram"]
    if not histogram_families:
        failures.append("no histogram families in the exposition")
    for family in histogram_families:
        buckets = samples.get(family + "_bucket", [])
        if not buckets:
            failures.append("%s: no _bucket series" % family)
            continue
        # Buckets arrive in le order; counts must be cumulative and the
        # +Inf bucket must equal _count (text format 0.0.4).
        previous, inf_value = 0.0, None
        for labels, value in buckets:
            le = labels.get("le")
            if le is None:
                failures.append("%s: bucket without le label" % family)
                continue
            if value < previous:
                failures.append(
                    "%s: bucket le=%s count %g < previous %g "
                    "(not cumulative)" % (family, le, value, previous))
            previous = value
            if le == "+Inf":
                inf_value = value
        count = samples.get(family + "_count", [({}, None)])[0][1]
        total = samples.get(family + "_sum", [({}, None)])[0][1]
        if count is None or total is None:
            failures.append("%s: missing _count or _sum" % family)
        elif inf_value is None:
            failures.append("%s: no le=\"+Inf\" bucket" % family)
        elif inf_value != count:
            failures.append("%s: +Inf bucket %g != _count %g" % (
                family, inf_value, count))
        if total is not None and count == 0 and total != 0:
            failures.append("%s: zero count but nonzero _sum %g" % (
                family, total))
    return failures


def scrape(args):
    """HTTP-GET /metrics off the daemon and validate the Prometheus text."""
    sock = connect(args.addr, args.timeout)
    sock.sendall(b"GET /metrics HTTP/1.0\r\nHost: lcn\r\n\r\n")
    raw = b""
    while True:  # HTTP/1.0: the server closes after the body
        chunk = sock.recv(65536)
        if not chunk:
            break
        raw += chunk
    sock.close()
    header, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        print("FAIL: no HTTP header/body separator in response",
              file=sys.stderr)
        return 1
    status_line = header.split(b"\r\n", 1)[0].decode("latin-1")
    if " 200 " not in status_line + " ":
        print("FAIL: expected 200, got %r" % status_line, file=sys.stderr)
        return 1
    text = body.decode("utf-8")
    if not args.quiet:
        sys.stdout.write(text)
    types, samples, errors = parse_prometheus(text)
    failures = ["parse: " + e for e in errors]
    failures += check_histograms(types, samples)
    counters = [n for n, t in types.items() if t == "counter"]
    if not counters:
        failures.append("no counter families in the exposition")
    for failure in failures:
        print("FAIL: %s" % failure, file=sys.stderr)
    if not failures:
        print("scrape ok: %d families (%d histograms), %d series, %d samples"
              % (len(types),
                 sum(1 for t in types.values() if t == "histogram"),
                 len(samples),
                 sum(len(v) for v in samples.values())), file=sys.stderr)
    return 1 if failures else 0


def smoke(args):
    """Two concurrent streamed design jobs; verify the full event lifecycle."""
    deadline = time.monotonic() + args.timeout
    channel = LineChannel(connect(args.addr, args.timeout))

    channel.send({"op": "ping"})
    reply = channel.recv(deadline)
    if not (reply and reply.get("ok")):
        print("FAIL: ping got %r" % (reply,), file=sys.stderr)
        return 1
    print("ping ok")

    for seed in (1, 2):
        channel.send({"op": "submit", "kind": "design", "case": args.case,
                      "objective": "p1", "scale": args.scale, "seed": seed,
                      "name": "smoke-%d" % seed, "stream": True})

    # Replies multiplex on the one connection: submit acks from the request
    # handler, events and final results from the runner threads. Ordering
    # between an ack and its job's first event is not guaranteed.
    acked, started, sa_iters, results = set(), set(), {}, {}
    while len(results) < 2:
        line = channel.recv(deadline)
        if line is None:
            print("FAIL: connection closed mid-stream", file=sys.stderr)
            return 1
        if "event" in line:
            job = line.get("job")
            name = line["event"]
            if name == "job_started":
                started.add(job)
            elif name == "sa_iter":
                sa_iters[job] = sa_iters.get(job, 0) + 1
        elif line.get("ok") and line.get("status") == "queued":
            acked.add(line["job"])
            print("submitted job %d" % line["job"])
        elif line.get("ok") and "status" in line:
            results[line["job"]] = line
            print("job %d finished: %s" % (line["job"], line["status"]))
        elif not line.get("ok"):
            print("FAIL: server error: %r" % (line,), file=sys.stderr)
            return 1

    failures = []
    if len(acked) != 2:
        failures.append("expected 2 submit acks, got %r" % sorted(acked))
    for job, result in sorted(results.items()):
        if job not in started:
            failures.append("job %d never emitted job_started" % job)
        if sa_iters.get(job, 0) < 1:
            failures.append("job %d streamed no sa_iter events" % job)
        if result.get("status") != "done":
            failures.append("job %d ended %s (%s)" % (
                job, result.get("status"), result.get("error", "")))
        elif not result.get("feasible"):
            failures.append("job %d reported an infeasible design" % job)
        elif "design_hash" not in result or "manifest" not in result:
            failures.append("job %d result is missing hash/manifest" % job)

    # The two seeds explore different SA trajectories; identical hashes would
    # mean the sessions leaked state into each other.
    hashes = {r.get("design_hash") for r in results.values()
              if r.get("status") == "done"}
    if len(results) == 2 and len(hashes) == 1 and None not in hashes:
        print("note: both seeds converged to the same design (legal, small "
              "schedule)")

    if failures:
        for failure in failures:
            print("FAIL: %s" % failure, file=sys.stderr)
        return 1
    for job, result in sorted(results.items()):
        print("  job %d: hash %s, W_pump %.3f mW, %d sa_iter events" % (
            job, result["design_hash"], result["w_pump"] * 1e3,
            sa_iters[job]))
    print("smoke ok: 2 streamed design jobs served concurrently")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--addr", default="tcp:127.0.0.1:7733",
                        help="unix:/path or tcp:host:port")
    parser.add_argument("--timeout", type=float, default=900.0,
                        help="overall deadline in seconds")
    parser.add_argument("--pretty", action="store_true",
                        help="indent one-shot replies")
    sub = parser.add_subparsers(dest="command", required=True)

    for op in ("ping", "list", "shutdown", "metrics"):
        sub.add_parser(op)
    for op in ("status", "result", "cancel"):
        p = sub.add_parser(op)
        p.add_argument("--job", type=int, required=True)

    p = sub.add_parser("submit")
    p.add_argument("--kind", choices=("design", "evaluate", "sweep"),
                   default="evaluate")
    p.add_argument("--case", type=int, default=2)
    p.add_argument("--objective", choices=("p1", "p2"), default="p1")
    p.add_argument("--scale", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--model", choices=("2rm", "4rm"), default="2rm")
    p.add_argument("--scenarios", type=int, default=32)
    p.add_argument("--name", default="")
    p.add_argument("--shares", type=int, default=0)
    p.add_argument("--job-timeout", type=float, default=0.0,
                   help="server-side deadline for the job")

    p = sub.add_parser("smoke")
    p.add_argument("--case", type=int, default=1)
    p.add_argument("--scale", type=float, default=0.005)

    p = sub.add_parser("scrape")
    p.add_argument("--quiet", action="store_true",
                   help="validate only, do not echo the exposition")

    args = parser.parse_args()
    try:
        if args.command == "smoke":
            return smoke(args)
        if args.command == "metrics":
            return metrics_op(args)
        if args.command == "scrape":
            return scrape(args)
        if args.command == "submit":
            return one_shot(args, submit_request(args))
        request = {"op": args.command}
        if args.command in ("status", "result", "cancel"):
            request["job"] = args.job
        return one_shot(args, request)
    except (OSError, TimeoutError, ValueError, json.JSONDecodeError) as err:
        print("error: %s" % err, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
