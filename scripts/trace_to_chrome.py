#!/usr/bin/env python3
"""Convert an LCN JSONL trace (LCN_TRACE output, DESIGN.md S19) to Chrome
trace_event JSON loadable in chrome://tracing or https://ui.perfetto.dev.

Usage:
    python3 scripts/trace_to_chrome.py trace.jsonl [out.json]

Stdlib only. Validates the trace while converting:
  - every line must parse as a self-contained JSON object,
  - begin/end events must pair up as a stack per thread,
  - timestamps must be monotone non-decreasing per thread.
Exits non-zero (with a message on stderr) on any violation.
"""

import json
import sys


def convert(lines):
    """Return (trace_dict, errors). Timestamps ns -> us (Chrome's unit)."""
    out = {"traceEvents": [], "displayTimeUnit": "ms"}
    errors = []
    stacks = {}   # tid -> [name, ...] of open B events
    last_ts = {}  # tid -> last seen ts_ns
    for lineno, raw in enumerate(lines, start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            ev = json.loads(raw)
        except json.JSONDecodeError as exc:
            errors.append(f"line {lineno}: invalid JSON ({exc})")
            continue
        ph = ev.get("ph")
        name = ev.get("name", "?")
        if ph == "M":
            # Manifest header: carried through as trace-wide metadata.
            out["otherData"] = ev.get("args", {})
            continue
        if ph not in ("B", "E", "i", "C"):
            errors.append(f"line {lineno}: unknown phase {ph!r}")
            continue
        tid = ev.get("tid", 0)
        ts_ns = ev.get("ts_ns")
        if not isinstance(ts_ns, int):
            errors.append(f"line {lineno}: missing/non-integer ts_ns")
            continue
        if ts_ns < last_ts.get(tid, 0):
            errors.append(
                f"line {lineno}: non-monotonic ts_ns on tid {tid} "
                f"({ts_ns} < {last_ts[tid]})")
        last_ts[tid] = ts_ns
        if ph == "B":
            stacks.setdefault(tid, []).append(name)
        elif ph == "E":
            stack = stacks.setdefault(tid, [])
            if not stack:
                errors.append(f"line {lineno}: E '{name}' without open span "
                              f"on tid {tid}")
            elif stack[-1] != name:
                errors.append(f"line {lineno}: E '{name}' does not match "
                              f"open span '{stack[-1]}' on tid {tid}")
            else:
                stack.pop()
        chrome = {
            "name": name,
            "ph": ph,
            "pid": 1,
            "tid": tid,
            "ts": ts_ns / 1000.0,  # Chrome expects microseconds
        }
        if ph == "i":
            chrome["s"] = "t"  # instant scope: thread
        if ph == "C":
            chrome["args"] = {"value": ev.get("args", {}).get("value", 0)}
        elif ev.get("args"):
            chrome["args"] = ev["args"]
        out["traceEvents"].append(chrome)
    for tid, stack in stacks.items():
        if stack:
            errors.append(f"tid {tid}: unclosed span(s) at EOF: {stack}")
    return out, errors


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    src = argv[1]
    dst = argv[2] if len(argv) == 3 else src.rsplit(".", 1)[0] + ".chrome.json"
    with open(src, encoding="utf-8") as fh:
        trace, errors = convert(fh)
    for err in errors:
        print(f"trace_to_chrome: {err}", file=sys.stderr)
    with open(dst, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    print(f"trace_to_chrome: {len(trace['traceEvents'])} events -> {dst}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
