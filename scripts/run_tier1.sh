#!/usr/bin/env bash
# Configure, build, and run the tier-1 test suite — the gate every change
# must keep green (ROADMAP.md).
#
# Usage: scripts/run_tier1.sh [build-dir]
#   build-dir     defaults to ./build; a sanitizer build gets its own
#                 directory (build-asan / build-ubsan) unless overridden
#
# Knobs:
#   LCN_SANITIZE=address|undefined   instrumented build (CMake LCN_SANITIZE)
#   LCN_THREADS                      pass through to the tests' thread pool
set -euo pipefail

sanitize="${LCN_SANITIZE:-}"
cmake_args=()
default_dir="build"
if [[ -n "${sanitize}" ]]; then
  case "${sanitize}" in
    address) default_dir="build-asan" ;;
    undefined) default_dir="build-ubsan" ;;
    *)
      echo "error: LCN_SANITIZE must be 'address' or 'undefined'" >&2
      exit 2
      ;;
  esac
  cmake_args+=("-DLCN_SANITIZE=${sanitize}")
fi
build_dir="${1:-${default_dir}}"

cmake -B "${build_dir}" -S . "${cmake_args[@]+"${cmake_args[@]}"}"
cmake --build "${build_dir}" -j
ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j "$(nproc)"
